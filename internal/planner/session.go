package planner

// A query session is the unit of lifetime and resource governance the
// paper's service deployment needs: receivers reach the mediator over a
// network, sources are remote and slow, and an abandoned or runaway query
// must stop consuming both promptly. A Session bundles a context
// (cancellation + deadline) with per-query resource governors; the
// executor threads it through every pipeline it compiles, so the leaves
// (source scans, bind-join fetches) and the breaker drains all observe
// the same lifetime.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relalg"
	"repro/internal/store"
)

// Limits are the resource-governor knobs of one query session. The zero
// value means ungoverned (no deadline, no caps).
type Limits struct {
	// Timeout bounds the session's wall-clock lifetime; enforced as a
	// context deadline, so exceeding it surfaces as
	// context.DeadlineExceeded from the pipeline.
	Timeout time.Duration
	// MaxRows caps the rows delivered to the receiver. It truncates the
	// answer rather than failing the query; the service layer (coin,
	// HTTP) applies it as a final LIMIT.
	MaxRows int
	// MaxTuples caps tuples transferred from sources across the whole
	// session; exceeding it aborts the query with ErrTuplesExceeded.
	MaxTuples int
	// MaxStagedBytes caps the cumulative (approximate) bytes of
	// intermediates staged through the TempStore; exceeding it aborts
	// the query with store.ErrStageBudgetExceeded.
	MaxStagedBytes int64
	// MaxConcurrentPerSource caps this session's in-flight queries
	// against any single source, below the source dispatcher's own pool
	// size (see internal/planner/access.go). Zero leaves the session
	// bounded only by the per-source dispatchers.
	MaxConcurrentPerSource int
	// RetryBudget caps the retries the whole session may consume across
	// all source operations — the per-operation bound is the executor's
	// RetryPolicy. Zero means unbudgeted (the per-operation policy alone
	// governs).
	RetryBudget int
	// MaxParallelism caps the workers intra-query parallel operators may
	// use in this session: the hash-repartition join exchange, the
	// partitioned sort and group-by cores, and the partitioned scan
	// fan-out. Zero defers to the executor's DefaultParallelism; 1 forces
	// serial pipelines (plans and EXPLAIN output are byte-identical to
	// the pre-exchange planner); values above 1 allow that many workers.
	MaxParallelism int
	// PartialResults degrades instead of failing when a mediation branch
	// is felled by a source fault (after retries and the breaker have had
	// their say): the branch is dropped, the answer is computed from the
	// surviving branches, and a Warning per dropped branch reaches the
	// receiver. Failures that are not source-attributed — governor
	// violations, cancellation, planning errors — stay fatal. Default
	// (false) is fail-fast: any branch failure fails the query.
	PartialResults bool
}

// ErrTuplesExceeded aborts a session that transferred more source tuples
// than its Limits.MaxTuples allows.
var ErrTuplesExceeded = fmt.Errorf("planner: session exceeded max tuples transferred")

// sessGov holds the governor state every pipeline of a query shares —
// including parallel mediation branches running under derived
// branch-scoped contexts. It is held by pointer so deriving a session
// (withContext) shares the counters instead of forking them.
type sessGov struct {
	budget *store.Budget

	// tuples is atomic, not mutex-guarded: it is charged once per tuple
	// pulled from a source, and parallel branch pipelines share the
	// session — a lock here would serialize them per tuple.
	tuples atomic.Int64

	// retries counts retries consumed session-wide against
	// Limits.RetryBudget.
	retries atomic.Int64

	// warnings collects the degraded-branch warnings of a partial answer;
	// parallel branches append concurrently.
	warnMu   sync.Mutex
	warnings []Warning

	// probe is the session-scoped source-result cache (access.go).
	probe probeCache

	// disp holds the session-level per-source admission pools backing
	// Limits.MaxConcurrentPerSource.
	disp dispatcherPool

	// obs buffers the run's statistics observations (observed source
	// cardinalities and latencies); Session.Close drains them into sink —
	// the executor's adaptive StatsStore — so a query's own feedback
	// reaches the optimizer only once the query is over, and parallel
	// branch pipelines contend on one small buffer lock instead of the
	// store. The buffer is bounded; overflow drains inline.
	obsMu   sync.Mutex
	obs     []statObs
	obsSink *StatsStore
}

// maxBufferedObs bounds a session's observation buffer; a run producing
// more flushes the surplus to the store inline.
const maxBufferedObs = 512

// Session is one query's lifetime: a context carrying cancellation and
// deadline, plus governors shared by every pipeline the query runs
// (including parallel mediation branches). Create one per query with
// Executor.NewSession and Close it when the answer has been consumed;
// Close cancels the context, which stops any still-running pipeline and
// releases the deadline timer.
type Session struct {
	ctx    context.Context
	cancel context.CancelFunc
	limits Limits
	gov    *sessGov
}

// NewSession derives a query session from ctx with the given limits. The
// session context inherits ctx's cancellation and gains a deadline when
// lim.Timeout is positive.
func (e *Executor) NewSession(ctx context.Context, lim Limits) *Session {
	var cancel context.CancelFunc
	if lim.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	s := &Session{ctx: ctx, cancel: cancel, limits: lim, gov: &sessGov{obsSink: e.AdaptiveStats}}
	if lim.MaxStagedBytes > 0 {
		s.gov.budget = &store.Budget{Max: lim.MaxStagedBytes}
	}
	return s
}

// withContext derives a view of the session bound to ctx (which must
// descend from the session context) while sharing every governor: the
// tuple counter, staging budget, probe cache and per-source admission
// pools. Parallel mediation uses it to give sibling branches a common
// branch-scoped context that is cancelled on the first branch failure.
// The derived session does not own ctx — Close/Cancel on it are no-ops;
// lifetime stays with the parent.
func (s *Session) withContext(ctx context.Context) *Session {
	if s == nil {
		return &Session{ctx: ctx, cancel: func() {}, gov: &sessGov{}}
	}
	return &Session{ctx: ctx, cancel: func() {}, limits: s.limits, gov: s.gov}
}

// Context returns the session's context; Open pipeline trees with it.
func (s *Session) Context() context.Context {
	if s == nil {
		//lint:allow ctxflow a nil session is the documented ungoverned case: background is the only context it has
		return context.Background()
	}
	return s.ctx
}

// Limits returns the session's resource limits.
func (s *Session) Limits() Limits {
	if s == nil {
		return Limits{}
	}
	return s.limits
}

// Cancel aborts the session's work without waiting for Close.
func (s *Session) Cancel() {
	if s != nil {
		s.cancel()
	}
}

// Close releases the session: it cancels the context (stopping any
// in-flight pipeline), frees the deadline timer, and flushes the buffered
// statistics observations into the executor's adaptive store — the
// feedback loop's hand-off point. Idempotent.
func (s *Session) Close() error {
	if s != nil {
		s.flushObs()
		s.cancel()
	}
	return nil
}

// bufferObs queues a statistics observation on the session, reporting
// false when the session has no statistics sink (the caller then records
// directly). Past the buffer bound the surplus drains to the store inline.
func (s *Session) bufferObs(o statObs) bool {
	if s == nil || s.gov.obsSink == nil {
		return false
	}
	g := s.gov
	var drain []statObs
	g.obsMu.Lock()
	g.obs = append(g.obs, o)
	if len(g.obs) >= maxBufferedObs {
		drain = g.obs
		g.obs = nil
	}
	g.obsMu.Unlock()
	for _, o := range drain {
		o.apply(g.obsSink)
	}
	return true
}

// flushObs drains the session's buffered observations into the adaptive
// store. Draining makes it idempotent, so derived branch sessions closing
// alongside their parent are harmless.
func (s *Session) flushObs() {
	if s == nil || s.gov.obsSink == nil {
		return
	}
	g := s.gov
	g.obsMu.Lock()
	drain := g.obs
	g.obs = nil
	g.obsMu.Unlock()
	for _, o := range drain {
		o.apply(g.obsSink)
	}
}

// TuplesTransferred reports the tuples charged against the session's
// transfer governor so far.
func (s *Session) TuplesTransferred() int {
	if s == nil {
		return 0
	}
	return int(s.gov.tuples.Load())
}

// chargeTuples records n source tuples against the session's transfer
// budget, failing once the budget is exhausted. A nil session or a zero
// MaxTuples is ungoverned.
func (s *Session) chargeTuples(n int) error {
	if s == nil {
		return nil
	}
	total := s.gov.tuples.Add(int64(n))
	if s.limits.MaxTuples > 0 && total > int64(s.limits.MaxTuples) {
		return fmt.Errorf("%w (%d > %d)", ErrTuplesExceeded, total, s.limits.MaxTuples)
	}
	return nil
}

// tupleBudget reports the session's remaining transfer budget; capped is
// false when the session is ungoverned. Scans use it to size batch
// requests so a governed stream never overshoots the limit by more than
// the one tuple that proves the limit was crossed.
func (s *Session) tupleBudget() (int, bool) {
	if s == nil || s.limits.MaxTuples <= 0 {
		return 0, false
	}
	rem := int64(s.limits.MaxTuples) - s.gov.tuples.Load()
	if rem < 0 {
		rem = 0
	}
	return int(rem), true
}

// chargeTupleBatch records n source tuples against the session's transfer
// budget in one atomic add. When the batch crosses the limit it reports
// how many of the n tuples still fit — the remainder accounting that lets
// a scan deliver the allowed prefix downstream before surfacing
// ErrTuplesExceeded, exactly matching what per-tuple charging delivered.
func (s *Session) chargeTupleBatch(n int) (int, error) {
	if s == nil {
		return n, nil
	}
	total := s.gov.tuples.Add(int64(n))
	if s.limits.MaxTuples > 0 && total > int64(s.limits.MaxTuples) {
		allowed := n - int(total-int64(s.limits.MaxTuples))
		if allowed < 0 {
			allowed = 0
		}
		return allowed, fmt.Errorf("%w (%d > %d)", ErrTuplesExceeded, total, s.limits.MaxTuples)
	}
	return n, nil
}

// chargeRetry asks the session for permission to retry one more source
// operation, charging its RetryBudget. A nil session or a zero budget is
// unbudgeted.
func (s *Session) chargeRetry() bool {
	if s == nil {
		return true
	}
	n := s.gov.retries.Add(1)
	return s.limits.RetryBudget <= 0 || n <= int64(s.limits.RetryBudget)
}

// warn records one degraded-branch warning on the session.
func (s *Session) warn(w Warning) {
	if s == nil {
		return
	}
	s.gov.warnMu.Lock()
	s.gov.warnings = append(s.gov.warnings, w)
	s.gov.warnMu.Unlock()
}

// warnBranch records branch (1-based) as dropped for err, attributing the
// source when err carries one.
func (s *Session) warnBranch(branch int, err error) {
	w := Warning{Branch: branch, Message: err.Error()}
	var se *SourceError
	if errors.As(err, &se) {
		w.Source = se.Source
	}
	s.warn(w)
}

// Warnings returns the degraded-branch warnings accumulated so far (nil
// when the answer is complete). The copy is safe to retain.
func (s *Session) Warnings() []Warning {
	if s == nil {
		return nil
	}
	s.gov.warnMu.Lock()
	defer s.gov.warnMu.Unlock()
	if len(s.gov.warnings) == 0 {
		return nil
	}
	return append([]Warning(nil), s.gov.warnings...)
}

// probeCacheRef returns the session's source-result cache (nil for a nil
// session: ungoverned runs do not deduplicate).
func (s *Session) probeCacheRef() *probeCache {
	if s == nil {
		return nil
	}
	s.gov.probe.mu.Lock()
	if s.gov.probe.entries == nil {
		s.gov.probe.entries = map[string]*probeEntry{}
	}
	s.gov.probe.mu.Unlock()
	return &s.gov.probe
}

// dispatcherFor returns the session-level admission pool for a source,
// or nil when the session does not cap per-source concurrency.
func (s *Session) dispatcherFor(source string) *dispatcher {
	if s == nil || s.limits.MaxConcurrentPerSource <= 0 {
		return nil
	}
	return s.gov.disp.get(source, s.limits.MaxConcurrentPerSource)
}

// sessionStager adapts the executor's TempStore to the relalg.Stager hook
// under a session: every staged intermediate first observes the session's
// cancellation, then is charged against its staging budget inside
// TempStore.Stage.
type sessionStager struct {
	temp *store.TempStore
	sess *Session
}

// Stage implements relalg.Stager.
func (st *sessionStager) Stage(rel *relalg.Relation) (*relalg.Relation, error) {
	if err := st.sess.Context().Err(); err != nil {
		return nil, err
	}
	return st.temp.StageWithin(rel, st.sess.budgetRef())
}

// budgetRef returns the session's staging budget (nil when ungoverned).
func (s *Session) budgetRef() *store.Budget {
	if s == nil {
		return nil
	}
	return s.gov.budget
}

// stagerFor adapts the executor's TempStore to the relalg.Stager hook
// breaker operators use, governed by sess; nil (keep everything resident)
// without a TempStore.
func (e *Executor) stagerFor(sess *Session) relalg.Stager {
	if e.Temp == nil {
		return nil
	}
	return &sessionStager{temp: e.Temp, sess: sess}
}
