// Package planner implements the multi-database access engine of Figure 1:
// a front end of dictionary and query services over the wrapped sources.
// It plans multi-source queries around each source's capabilities
// (selection/projection power, required bindings) and communication costs,
// controls execution of the resulting plan, and performs the operations
// sources cannot — cross-source joins, residual predicates, aggregation —
// locally using internal/relalg, spilling large intermediates through the
// temporary store.
//
// Execution is streaming: a BranchPlan compiles to a pull-based iterator
// tree (BuildStream) whose leaves fetch from the wrappers tuple by tuple,
// so early exits (LIMIT, lazily-consumed mediation branches) stop pulling
// from the sources instead of materializing every intermediate result.
//
// Planning is cost-based and adaptive: the logical query graph
// (logical.go) feeds a Selinger-style left-deep enumerator (optimize.go)
// priced by a cost model (cost.go) over statistics learned from actual
// executions (stats.go); EXPLAIN ANALYZE (analyze.go, plan.go) renders
// estimated-vs-measured rows, queries and cost per plan step.
package planner

import (
	"fmt"
	"sort"

	"repro/internal/relalg"
	"repro/internal/wrapper"
)

// Catalog is the dictionary service: it maps every exported relation to
// the wrapper serving it and answers schema questions.
type Catalog struct {
	sources   map[string]wrapper.Wrapper
	relSource map[string]string
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{sources: map[string]wrapper.Wrapper{}, relSource: map[string]string{}}
}

// AddSource registers a wrapper and all relations it exports. Relation
// names must be globally unique across sources (the paper's queries are
// source-qualified through unique relation names such as r1, r2, r3).
func (c *Catalog) AddSource(w wrapper.Wrapper) error {
	name := w.Source()
	if _, dup := c.sources[name]; dup {
		return fmt.Errorf("planner: source %s already registered", name)
	}
	for _, rel := range w.Relations() {
		if owner, dup := c.relSource[rel]; dup {
			return fmt.Errorf("planner: relation %s exported by both %s and %s", rel, owner, name)
		}
	}
	c.sources[name] = w
	for _, rel := range w.Relations() {
		c.relSource[rel] = name
	}
	return nil
}

// MustAddSource is AddSource that panics; for fixtures.
func (c *Catalog) MustAddSource(w wrapper.Wrapper) {
	if err := c.AddSource(w); err != nil {
		panic(err)
	}
}

// WrapperFor returns the wrapper serving a relation.
func (c *Catalog) WrapperFor(relation string) (wrapper.Wrapper, error) {
	src, ok := c.relSource[relation]
	if !ok {
		return nil, fmt.Errorf("planner: no source exports relation %s", relation)
	}
	return c.sources[src], nil
}

// Schema returns a relation's schema.
func (c *Catalog) Schema(relation string) (relalg.Schema, error) {
	w, err := c.WrapperFor(relation)
	if err != nil {
		return relalg.Schema{}, err
	}
	return w.Schema(relation)
}

// Relations lists every exported relation, sorted.
func (c *Catalog) Relations() []string {
	out := make([]string, 0, len(c.relSource))
	for r := range c.relSource {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Sources lists the registered sources, sorted.
func (c *Catalog) Sources() []string {
	out := make([]string, 0, len(c.sources))
	for s := range c.sources {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SourceOf names the source exporting a relation.
func (c *Catalog) SourceOf(relation string) (string, bool) {
	s, ok := c.relSource[relation]
	return s, ok
}
