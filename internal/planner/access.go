package planner

// The source access layer: every fetch the engine issues — streaming
// scans and materialized bind-join probes alike — is admitted through a
// per-source dispatcher, a bounded pool of in-flight queries keyed by
// wrapper. The pool size comes from the source's Cost.MaxConcurrent
// (sources know their own tolerance), further capped per session by
// Limits.MaxConcurrentPerSource. On top of admission, materialized
// probe fetches are deduplicated within a session: a canonicalized
// SourceQuery that has already been answered is served from the session
// result cache, and one that is currently in flight is joined
// (single-flight) instead of re-issued — repeated identical probes
// across mediation branches hit the network exactly once.
//
// Slot discipline: a streaming scan holds its slot from Open until the
// stream is exhausted, fails, or is closed; a materialized fetch holds
// it for the duration of the source query; a partitioned scan fan-out
// holds ScanParts slots at once, reserved all-or-nothing up front
// (acquireSourceN) before any part stream opens. The deadlock argument,
// re-proven for the fan-out era:
//
//   - Per pipeline, at most one SCAN STEP is active at a time (every
//     breaker collects one side to completion — closing it and freeing
//     its slots — before opening the other), so a pipeline waiting for
//     admission holds no slots from other steps. A fan-out's K held
//     slots all belong to the one active step, and all K part streams
//     are drained concurrently by that step's reassembly workers, so a
//     held slot always belongs to a stream whose progress depends only
//     on the pipeline's own consumer — never on another admission wait.
//   - Multi-slot reservations are serialized per dispatcher by a fan-out
//     mutex, so two fan-outs can never interleave partial acquisitions
//     of one pool and deadlock each other holding half a pool each; a
//     reservation in progress waits only for single-slot holders, which
//     release independently (their streams drain on their own).
//   - Reservations never exceed a pool: the parallelize pass clamps
//     ScanParts to the source's concurrency cap and the session's
//     per-source allowance, so an up-front reservation always fits.
//   - The session-level and source-level pools are always taken in that
//     order (session first), for singles and reservations alike, so the
//     two levels cannot deadlock against each other.

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/relalg"
	"repro/internal/wrapper"
)

// DefaultMaxConcurrentPerSource is the dispatcher pool size for sources
// that do not state their own Cost.MaxConcurrent.
const DefaultMaxConcurrentPerSource = 4

// dispatcher is a bounded admission pool for one source: at most
// cap(slots) queries are in flight against it at once. The executor-level
// dispatcher additionally carries the source's circuit breaker
// (breaker.go) — admission and health tracking want the same per-source
// scope.
type dispatcher struct {
	slots chan struct{}

	// fanMu serializes multi-slot reservations (acquireN): two fan-outs
	// interleaving partial acquisitions of one pool could each hold half
	// and wait forever for the other's half. Single-slot acquires bypass
	// it — they hold-and-wait on nothing.
	fanMu sync.Mutex

	// circuit-breaker state (methods in breaker.go)
	bmu        sync.Mutex
	bstate     int // breakerClosed / breakerOpen / breakerHalfOpen
	bfails     int // consecutive failures while closed
	bopenUntil time.Time
	bprobing   bool // half-open probe in flight
}

func newDispatcher(n int) *dispatcher {
	if n <= 0 {
		n = DefaultMaxConcurrentPerSource
	}
	return &dispatcher{slots: make(chan struct{}, n)}
}

// acquire blocks until a slot frees or ctx dies.
func (d *dispatcher) acquire(ctx context.Context) error {
	select {
	case d.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// acquireN reserves n slots all-or-nothing under the fan-out mutex: on
// ctx death mid-reservation every slot already taken is returned. n must
// not exceed the pool (capacity); callers clamp.
func (d *dispatcher) acquireN(ctx context.Context, n int) error {
	d.fanMu.Lock()
	defer d.fanMu.Unlock()
	for i := 0; i < n; i++ {
		if err := d.acquire(ctx); err != nil {
			for ; i > 0; i-- {
				d.release()
			}
			return err
		}
	}
	return nil
}

// capacity reports the pool size.
func (d *dispatcher) capacity() int { return cap(d.slots) }

// release frees one acquired slot. Releasing more than was acquired is a
// slot-accounting bug in the caller (a double release would silently
// widen the pool), so it panics rather than corrupting admission.
func (d *dispatcher) release() {
	select {
	case <-d.slots:
	default:
		panic("planner: dispatcher release without acquire")
	}
}

// dispatcherPool lazily keeps one dispatcher per source; the executor
// (source-level pools) and the session (per-query allowances) share it.
type dispatcherPool struct {
	mu sync.Mutex
	m  map[string]*dispatcher
}

// get returns the source's dispatcher, creating it with n slots (0:
// default) on first use.
func (p *dispatcherPool) get(source string, n int) *dispatcher {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = map[string]*dispatcher{}
	}
	d := p.m[source]
	if d == nil {
		d = newDispatcher(n)
		p.m[source] = d
	}
	return d
}

// dispatcherFor returns (creating on first use) the executor's admission
// pool for w's source.
func (e *Executor) dispatcherFor(w wrapper.Wrapper) *dispatcher {
	return e.disp.get(w.Source(), w.Cost().MaxConcurrent)
}

// acquireSource reserves one in-flight-query slot against w — first in
// the session's per-source allowance (when limited), then in the
// source's own dispatcher; the consistent ordering rules out deadlock
// between the two levels. It returns the release callback, which must be
// called exactly once.
func (e *Executor) acquireSource(ctx context.Context, sess *Session, w wrapper.Wrapper) (func(), error) {
	sd := sess.dispatcherFor(w.Source())
	if sd != nil {
		if err := sd.acquire(ctx); err != nil {
			return nil, err
		}
	}
	d := e.dispatcherFor(w)
	if err := d.acquire(ctx); err != nil {
		if sd != nil {
			sd.release()
		}
		return nil, err
	}
	return func() {
		d.release()
		if sd != nil {
			sd.release()
		}
	}, nil
}

// acquireSourceN reserves n in-flight-query slots against w as one
// all-or-nothing unit — the admission form of a partitioned scan
// fan-out, which holds all n slots until its last part stream is torn
// down. Levels are taken in the same session-then-source order as
// acquireSource; each level's reservation runs under that dispatcher's
// fan-out mutex (see the slot-discipline comment at the top of this
// file for the deadlock argument). n is clamped to the smaller pool; the
// actual reservation size is returned with a release callback that frees
// all of it, exactly once.
func (e *Executor) acquireSourceN(ctx context.Context, sess *Session, w wrapper.Wrapper, n int) (got int, release func(), err error) {
	sd := sess.dispatcherFor(w.Source())
	d := e.dispatcherFor(w)
	if n > d.capacity() {
		n = d.capacity()
	}
	if sd != nil && n > sd.capacity() {
		n = sd.capacity()
	}
	if n < 1 {
		n = 1
	}
	if sd != nil {
		if err := sd.acquireN(ctx, n); err != nil {
			return 0, nil, err
		}
	}
	if err := d.acquireN(ctx, n); err != nil {
		if sd != nil {
			for i := 0; i < n; i++ {
				sd.release()
			}
		}
		return 0, nil, err
	}
	return n, func() {
		for i := 0; i < n; i++ {
			d.release()
			if sd != nil {
				sd.release()
			}
		}
	}, nil
}

// DefaultProbeCacheBytes bounds the (approximate) bytes of probe answers
// a session retains for reuse. Past the bound, answers are still
// single-flighted while in flight but are not kept afterwards, so a
// huge bind join cannot pin its whole fetched volume in memory for the
// session's lifetime.
const DefaultProbeCacheBytes = 64 << 20

// probeCache is the session-scoped source-result cache with single-flight
// deduplication. Entries key on source name + SourceQuery.Canonical().
type probeCache struct {
	mu      sync.Mutex
	entries map[string]*probeEntry
	bytes   int64
}

// probeEntry is one cached (or in-flight) answer; done closes when rel
// and err are final.
type probeEntry struct {
	done chan struct{}
	rel  *relalg.Relation
	err  error
}

// fetchSource answers one materialized source query through the
// dispatcher, deduplicated within the session: a repeated identical
// probe returns the cached relation (counted as a cache hit, not a
// source query), and a concurrent identical probe waits for the first
// one's answer instead of contacting the source again. Errors are not
// cached — the waiting duplicates observe the error, later probes retry.
// With a nil session there is no cache and the fetch goes straight
// through admission.
func (e *Executor) fetchSource(ctx context.Context, sess *Session, w wrapper.Wrapper, q wrapper.SourceQuery) (*relalg.Relation, error) {
	cache := sess.probeCacheRef()
	if cache == nil {
		return e.querySource(ctx, sess, w, q)
	}
	key := w.Source() + "\x00" + q.Canonical()
	cache.mu.Lock()
	if ent, ok := cache.entries[key]; ok {
		cache.mu.Unlock()
		select {
		case <-ent.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if ent.err != nil {
			return nil, ent.err
		}
		e.mu.Lock()
		e.stats.CacheHits++
		e.mu.Unlock()
		return ent.rel, nil
	}
	ent := &probeEntry{done: make(chan struct{})}
	cache.entries[key] = ent
	cache.mu.Unlock()
	ent.rel, ent.err = e.querySource(ctx, sess, w, q)
	if ent.err != nil {
		cache.mu.Lock()
		delete(cache.entries, key)
		cache.mu.Unlock()
	} else {
		// Retain the answer only within the session's cache byte budget;
		// an over-budget answer still serves the waiters that joined this
		// flight, it just is not kept for later probes.
		size := ent.rel.ApproxBytes()
		cache.mu.Lock()
		if cache.bytes+size > DefaultProbeCacheBytes {
			delete(cache.entries, key)
		} else {
			cache.bytes += size
		}
		cache.mu.Unlock()
	}
	close(ent.done)
	return ent.rel, ent.err
}

// querySource runs one materialized source query under admission and the
// retry/breaker machinery (retry.go), counting it, charging the session's
// transfer governor, and feeding the adaptive statistics (observed
// cardinality and query latency). Each attempt re-acquires admission, so
// no slot is held through a backoff sleep; governor charges happen once,
// after the attempt that succeeded.
func (e *Executor) querySource(ctx context.Context, sess *Session, w wrapper.Wrapper, q wrapper.SourceQuery) (*relalg.Relation, error) {
	var rel *relalg.Relation
	err := e.withRetry(ctx, sess, w, func() error {
		release, err := e.acquireSource(ctx, sess, w)
		if err != nil {
			return err
		}
		defer release()
		start := time.Now()
		rel, err = w.Query(ctx, q)
		if err != nil {
			return err
		}
		e.observeLatency(sess, w.Source(), time.Since(start))
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Governor and accounting effects stay outside the retry loop: a
	// budget violation is the query's fault, not the source's, so it must
	// not feed the breaker or come back source-attributed (it stays fatal
	// even in partial-results mode).
	e.observeAccess(sess, q.Relation, q.Filters, rel.Len())
	e.countQuery(rel.Len())
	if err := sess.chargeTuples(rel.Len()); err != nil {
		return nil, err
	}
	return rel, nil
}

// observeAccess feeds one completed source access (relation, filters,
// tuples transferred) into the adaptive statistics: buffered in the
// session when one governs the run (flushed at Session.Close), recorded
// directly otherwise. A nil AdaptiveStats disables learning.
func (e *Executor) observeAccess(sess *Session, relation string, filters []wrapper.Filter, rows int) {
	if e.AdaptiveStats == nil {
		return
	}
	o := statObs{relation: relation, filters: filters, rows: rows}
	if sess != nil && sess.bufferObs(o) {
		return
	}
	o.apply(e.AdaptiveStats)
}

// observeLatency feeds one measured source-query latency the same way.
func (e *Executor) observeLatency(sess *Session, source string, d time.Duration) {
	if e.AdaptiveStats == nil {
		return
	}
	o := statObs{source: source, latency: d}
	if sess != nil && sess.bufferObs(o) {
		return
	}
	o.apply(e.AdaptiveStats)
}

// fetchAll answers a set of source queries concurrently (each through
// fetchSource, so admission, caching and governors all apply), returning
// the results in query order. A worker pool no larger than the source's
// own concurrency cap runs them — more goroutines would only queue at
// the dispatcher. The queries share a context cancelled on the first
// failure, so sibling fetches stop promptly; the first error by query
// order that is not that derived cancellation is reported.
func (e *Executor) fetchAll(ctx context.Context, sess *Session, w wrapper.Wrapper, queries []wrapper.SourceQuery) ([]*relalg.Relation, error) {
	if len(queries) == 1 {
		rel, err := e.fetchSource(ctx, sess, w, queries[0])
		if err != nil {
			return nil, err
		}
		return []*relalg.Relation{rel}, nil
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := w.Cost().MaxConcurrent
	if workers <= 0 {
		workers = DefaultMaxConcurrentPerSource
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	results := make([]*relalg.Relation, len(queries))
	errs := make([]error, len(queries))
	next := make(chan int)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = e.fetchSource(fctx, sess, w, queries[i])
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	if err := firstRealError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// firstRealError picks the error to report from a cancelled-as-a-group
// fan-out: the first (by order) that is not a context error — Canceled
// and DeadlineExceeded alike are usually just the echo of the group
// cancellation a sibling's failure triggered — falling back to the first
// error of any kind (the whole group may have been cancelled or timed
// out from above). nil when every slot succeeded.
func firstRealError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return first
}

// batchSizeFor decides the bind-join batch width against a source: its
// advertised IN-list width when batching applies, 1 (per-value probes)
// when it does not. Batching requires an InList-capable source and a
// single-column bind join (an IN list expresses one column's
// disjunction); DisableBatching is the ablation switch.
func (e *Executor) batchSizeFor(caps wrapper.Capabilities, bindCols int) int {
	if e.DisableBatching || bindCols != 1 || !caps.InList {
		return 1
	}
	if caps.BatchSize > 0 {
		return caps.BatchSize
	}
	return wrapper.DefaultBatchSize
}
