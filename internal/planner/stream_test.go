package planner

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
)

// bigCatalog wires a single relational source holding n sequential rows.
func bigCatalog(n int) *Catalog {
	db := store.NewDB("bigsrc")
	tab := db.MustCreateTable("nums", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber},
		relalg.Column{Name: "grp", Type: relalg.KindString},
	))
	for i := 0; i < n; i++ {
		g := "even"
		if i%2 == 1 {
			g = "odd"
		}
		tab.MustInsert(relalg.NumV(float64(i)), relalg.StrV(g))
	}
	cat := NewCatalog()
	cat.MustAddSource(wrapper.NewRelational(db))
	return cat
}

// TestLimitTransfersOnlyLimitTuples is the acceptance criterion of the
// streaming executor: SELECT ... LIMIT n over a large source stops
// pulling after n tuples — ExecStats reports O(n) transfer, not O(source).
func TestLimitTransfersOnlyLimitTuples(t *testing.T) {
	const source = 50000
	ex := NewExecutor(bigCatalog(source))
	res, err := ex.Execute(sqlparse.MustParse("SELECT nums.n FROM nums LIMIT 5"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Fatalf("result = %s", res)
	}
	st := ex.Stats()
	if st.TuplesTransferred != 5 {
		t.Errorf("TuplesTransferred = %d, want exactly 5 (source holds %d)", st.TuplesTransferred, source)
	}
	if st.SourceQueries != 1 || st.BranchesRun != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestLimitWithLocalFilterStaysSublinear: a filter the engine applies
// locally sits between source and LIMIT; the transfer must stop as soon
// as the limit fills, far below the source size.
func TestLimitWithLocalFilterStaysSublinear(t *testing.T) {
	const source = 50000
	ex := NewExecutor(bigCatalog(source))
	ex.DisablePushdown = true
	res, err := ex.Execute(sqlparse.MustParse(
		"SELECT nums.n FROM nums WHERE nums.grp = 'odd' LIMIT 4"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("result = %s", res)
	}
	// Odd rows are every second tuple: filling LIMIT 4 needs ~8 pulls.
	if st := ex.Stats(); st.TuplesTransferred >= 100 {
		t.Errorf("TuplesTransferred = %d, want O(limit), not O(%d)", st.TuplesTransferred, source)
	}
}

// TestFullScanStillCountsEverything: without a LIMIT the stream drains,
// and the stats match the materialized executor's accounting.
func TestFullScanStillCountsEverything(t *testing.T) {
	ex := NewExecutor(bigCatalog(1000))
	if _, err := ex.Execute(sqlparse.MustParse("SELECT nums.n FROM nums")); err != nil {
		t.Fatal(err)
	}
	if st := ex.Stats(); st.TuplesTransferred != 1000 || st.SourceQueries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestMediationBranchesLazilySkipped: when an early exit above the
// mediated union is satisfied by the first branch, later branches never
// open — they issue no source queries and are not counted as run.
func TestMediationBranchesLazilySkipped(t *testing.T) {
	cat := bigCatalog(100)
	b1 := sqlparse.MustParse("SELECT nums.n FROM nums").(*sqlparse.Select)
	b2 := sqlparse.MustParse("SELECT nums.n FROM nums").(*sqlparse.Select)
	med := &core.Mediation{
		Branches: []*sqlparse.Select{b1, b2},
		UnionAll: true,
		Post:     &core.Post{Limit: 3},
	}
	ex := NewExecutor(cat)
	res, err := ex.ExecuteMediation(med)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("result = %s", res)
	}
	st := ex.Stats()
	if st.BranchesRun != 1 {
		t.Errorf("BranchesRun = %d, want 1 (second branch should never open)", st.BranchesRun)
	}
	if st.SourceQueries != 1 || st.TuplesTransferred != 3 {
		t.Errorf("stats = %+v", st)
	}
}

// TestStreamingBreakersStageThroughTempStore: with a TempStore set, the
// pipeline breakers stage intermediates (and spill past the threshold)
// while the streamed answer stays correct.
func TestStreamingBreakersStageThroughTempStore(t *testing.T) {
	ts, err := store.NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	ts.SpillThreshold = 8
	ex := NewExecutor(bigCatalog(100))
	ex.Temp = ts
	res, err := ex.Execute(sqlparse.MustParse(
		"SELECT nums.n FROM nums WHERE nums.n < 50 ORDER BY nums.n DESC LIMIT 2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Tuples[0][0].N != 49 || res.Tuples[1][0].N != 48 {
		t.Fatalf("result = %s", res)
	}
	if ts.Spills() == 0 {
		t.Error("sort buffer above the threshold did not spill")
	}
}

// TestBuildStreamHasNoSideEffects: compiling a plan contacts no source;
// only opening the tree does.
func TestBuildStreamHasNoSideEffects(t *testing.T) {
	ex := NewExecutor(bigCatalog(100))
	plan, err := ex.Plan(sqlparse.MustParse("SELECT nums.n FROM nums").(*sqlparse.Select))
	if err != nil {
		t.Fatal(err)
	}
	it, err := ex.BuildStream(nil, plan)
	if err != nil {
		t.Fatal(err)
	}
	if st := ex.Stats(); st.SourceQueries != 0 || st.BranchesRun != 0 {
		t.Errorf("building the stream already ran queries: %+v", st)
	}
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if st := ex.Stats(); st.SourceQueries != 1 || st.BranchesRun != 1 {
		t.Errorf("stats after open = %+v", st)
	}
}
