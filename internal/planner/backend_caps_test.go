package planner

// Capability edge cases through the full plan/execute path: a source
// that advertises IN-lists but a batch width of one (the planner must
// fall back to per-value probes and never send OpIn), a required binding
// that only a bind join can satisfy, and streams that end on an empty
// chunk — including a stream with no rows at all.

import (
	"strings"
	"testing"

	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
	"repro/internal/wrapper/wrappertest"
)

// capsOverride rewrites selected relations' advertised capabilities while
// delegating everything else to the inner wrapper.
type capsOverride struct {
	wrapper.Wrapper
	caps map[string]wrapper.Capabilities
}

func (c *capsOverride) Capabilities(rel string) (wrapper.Capabilities, error) {
	if v, ok := c.caps[rel]; ok {
		return v, nil
	}
	return c.Wrapper.Capabilities(rel)
}

// bindCatalog builds a feeder f (four rows over three distinct keys) and
// a binding-required target t on its own source, optionally with target
// capabilities rewritten.
func bindCatalog(t *testing.T, rewrite func(wrapper.Capabilities) wrapper.Capabilities) (*Catalog, *wrappertest.Counter) {
	t.Helper()
	fdb := store.NewDB("feed")
	f := fdb.MustCreateTable("f", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "v", Type: relalg.KindNumber}))
	for i, k := range []string{"a", "b", "c", "a"} {
		f.MustInsert(relalg.StrV(k), relalg.NumV(float64(i)))
	}
	tdb := store.NewDB("tgt")
	tt := tdb.MustCreateTable("t", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "w", Type: relalg.KindNumber}))
	for i, k := range []string{"a", "b", "c"} {
		tt.MustInsert(relalg.StrV(k), relalg.NumV(float64(100+i)))
	}
	tr := wrapper.NewRelational(tdb)
	tr.Require = map[string][]string{"t": {"k"}}

	var tw wrapper.Wrapper = tr
	if rewrite != nil {
		caps, err := tr.Capabilities("t")
		if err != nil {
			t.Fatal(err)
		}
		tw = &capsOverride{Wrapper: tr, caps: map[string]wrapper.Capabilities{"t": rewrite(caps)}}
	}
	counter := wrappertest.NewCounter(tw)
	cat := NewCatalog()
	cat.MustAddSource(wrapper.NewRelational(fdb))
	cat.MustAddSource(counter)
	return cat, counter
}

const capsBindQ = "SELECT f.v, t.w FROM f, t WHERE t.k = f.k"

// TestInListWithUnitBatchFallsBackToProbes: InList advertised together
// with BatchSize=1 must not batch — the planner probes once per distinct
// feeder value with plain equality filters, and the plan shows no
// batch[k] marker.
func TestInListWithUnitBatchFallsBackToProbes(t *testing.T) {
	cat, counter := bindCatalog(t, func(caps wrapper.Capabilities) wrapper.Capabilities {
		caps.InList = true
		caps.BatchSize = 1
		return caps
	})
	ex := NewExecutor(cat)
	sel := sqlparse.MustParse(capsBindQ).(*sqlparse.Select)
	plan, err := ex.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Explain(), "batch[") {
		t.Fatalf("unit batch width must not plan batching:\n%s", plan.Explain())
	}
	res, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("join returned %d rows, want 4: %v", res.Len(), res.Tuples)
	}
	probes := 0
	for _, q := range counter.Log() {
		if q.Relation != "t" {
			continue
		}
		probes++
		for _, fl := range q.Filters {
			if fl.Op == wrapper.OpIn {
				t.Fatalf("source with BatchSize=1 received an IN-list: %+v", q)
			}
			if fl.Op != "=" {
				t.Fatalf("bind probe used op %q, want =", fl.Op)
			}
		}
	}
	if probes != 3 {
		t.Fatalf("made %d probes, want one per distinct feeder value (3)", probes)
	}
}

// TestRequiredBindingSatisfiedOnlyByBindJoin: no literal constrains t.k,
// so only the join edge can bind it — the planner must place the feeder
// first and bind-join t rather than reject the query.
func TestRequiredBindingSatisfiedOnlyByBindJoin(t *testing.T) {
	cat, counter := bindCatalog(t, nil)
	ex := NewExecutor(cat)
	sel := sqlparse.MustParse(capsBindQ).(*sqlparse.Select)
	plan, err := ex.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	var tStep *PlanStep
	for i := range plan.Steps {
		if plan.Steps[i].Relation == "t" {
			tStep = &plan.Steps[i]
		}
	}
	if tStep == nil || len(tStep.BindJoins) != 1 {
		t.Fatalf("t must be reached via bind join:\n%s", plan.Explain())
	}
	if plan.Steps[0].Relation != "f" {
		t.Fatalf("feeder must be placed first:\n%s", plan.Explain())
	}
	res, err := ex.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("join returned %d rows, want 4: %v", res.Len(), res.Tuples)
	}
	if counter.Queries() == 0 {
		t.Fatal("bind join never reached the source")
	}
}

// chunkedCatalog serves one four-row relation through a stream that
// always ends with an empty chunk.
func chunkedCatalog(size int) (*Catalog, *wrappertest.Chunked) {
	db := store.NewDB("cdb")
	r := db.MustCreateTable("r", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "v", Type: relalg.KindNumber}))
	for i, k := range []string{"a", "b", "c", "d"} {
		r.MustInsert(relalg.StrV(k), relalg.NumV(float64(i)))
	}
	ch := wrappertest.NewChunked(wrapper.NewRelational(db), size)
	cat := NewCatalog()
	cat.MustAddSource(ch)
	return cat, ch
}

// TestStreamWithEmptyFinalChunk: four rows at chunk width two means two
// full fetches plus the empty tail fetch; the executor must deliver all
// four rows exactly once and treat the empty chunk as clean EOF.
func TestStreamWithEmptyFinalChunk(t *testing.T) {
	cat, ch := chunkedCatalog(2)
	ex := NewExecutor(cat)
	res, err := ex.Execute(sqlparse.MustParse("SELECT r.k, r.v FROM r"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("streamed %d rows, want 4: %v", res.Len(), res.Tuples)
	}
	seen := map[string]bool{}
	for _, tup := range res.Tuples {
		if seen[tup[0].S] {
			t.Fatalf("duplicate row %v across chunk boundary", tup)
		}
		seen[tup[0].S] = true
	}
	if got := ch.Chunks(); got != 3 {
		t.Fatalf("stream made %d chunk fetches, want 2 full + 1 empty", got)
	}
}

// TestStreamWithNoRows: a pushed filter that matches nothing yields a
// stream whose only chunk is the empty one.
func TestStreamWithNoRows(t *testing.T) {
	cat, ch := chunkedCatalog(2)
	ex := NewExecutor(cat)
	res, err := ex.Execute(sqlparse.MustParse("SELECT r.k FROM r WHERE r.k = 'zzz'"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("empty stream produced rows: %v", res.Tuples)
	}
	if got := ch.Chunks(); got != 1 {
		t.Fatalf("empty stream made %d chunk fetches, want exactly the empty one", got)
	}
}
