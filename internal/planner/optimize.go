package planner

// The physical half of the optimizer: given the logical query graph
// (logical.go) and the cost model (cost.go), choose a left-deep access
// order and materialize it into a BranchPlan. Two enumerators share one
// candidate-step builder, so they differ only in how they search:
//
//   - dpOrder is Selinger-style dynamic programming over placed-set
//     bitmasks: best[mask] holds the cheapest left-deep prefix covering
//     exactly the relations in mask, transitions try every feasible next
//     relation, and the full-mask winner is reconstructed through parent
//     pointers. Bind-join feasibility (required bindings fed by constants
//     or placed relations) prunes transitions, so every enumerated order
//     is executable.
//   - greedyOrder is the legacy myopic pass — cheapest feasible access
//     next — kept as the Executor.DisableReorder ablation and as the
//     fallback above maxDPRelations relations, where 2^n states stop
//     being cheap.
//
// Both are deterministic: states advance in increasing mask order,
// relations in FROM order, and a candidate replaces the incumbent only
// when strictly cheaper, so ties resolve to the earliest-found order and
// repeated planning of the same query renders byte-identical plans.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/wrapper"
)

// maxDPRelations caps the dynamic program's FROM-clause size; beyond it
// the greedy enumerator plans (2^n states would outgrow the win).
const maxDPRelations = 12

// Plan builds the capability- and cost-aware plan for one SELECT block:
// it builds the logical query graph, then enumerates left-deep access
// orders — dynamic programming by default, the greedy pass under
// DisableReorder or past maxDPRelations relations — admitting a relation
// only once its required bindings can be fed by constants or by columns
// of relations already placed (a bind join), and materializes the winning
// order into executable steps.
//
// Plan is the ungoverned convenience form; the engine's own call sites
// use PlanCtx with the session context so stat probes die with the
// session.
func (e *Executor) Plan(sel *sqlparse.Select) (*BranchPlan, error) {
	//lint:allow ctxflow Plan is the documented context-free convenience; engine paths call PlanCtx
	return e.PlanCtx(context.Background(), sel)
}

// PlanCtx is Plan with an explicit context bounding the cost model's
// wrapper stat probes (EstimateRows / DistinctCount against live
// sources).
func (e *Executor) PlanCtx(ctx context.Context, sel *sqlparse.Select) (*BranchPlan, error) {
	lq, err := e.buildLogical(sel)
	if err != nil {
		return nil, err
	}
	pb := &planBuilder{e: e, lq: lq, cm: e.costModelFor(ctx)}
	var order []int
	if e.DisableReorder || len(lq.rels) > maxDPRelations {
		order, err = pb.greedyOrder()
	} else {
		order, err = pb.dpOrder()
	}
	if err != nil {
		return nil, err
	}
	return pb.build(order)
}

// planBuilder turns (logical graph, cost model) into candidate steps and
// complete plans.
type planBuilder struct {
	e  *Executor
	lq *logicalQuery
	cm *costModel
}

// errNoFeasibleOrder is the shared complaint when no placement order can
// feed every required binding.
func errNoFeasibleOrder() error {
	return fmt.Errorf("planner: cannot satisfy required bindings of the remaining relations (no feasible access order)")
}

// candidate prices placing b next, given the relations already placed and
// the estimated cardinality of the current intermediate result. It
// returns the executable step, the estimated cardinality after the step's
// joins, and the step's cost; ok=false when b's required bindings cannot
// be fed yet.
func (pb *planBuilder) candidate(b *relBinding, placed uint64, curRows float64) (step PlanStep, outRows, cost float64, ok bool) {
	lq := pb.lq
	// Required bindings not covered by constant filters must be fed from
	// join edges to placed bindings.
	var bindJoins []BindPair
	for _, rc := range b.caps.RequiredBindings {
		if b.reqCovered[rc] {
			continue
		}
		fed := lq.feedFor(b, rc, placed)
		if fed == "" {
			return PlanStep{}, 0, 0, false
		}
		bindJoins = append(bindJoins, BindPair{Column: rc, FromQualified: fed})
	}
	// Join keys to already-placed bindings.
	var keys []JoinKey
	for _, j := range lq.joins {
		switch {
		case j.a == b && placed&j.b.bit() != 0:
			keys = append(keys, JoinKey{CurQualified: j.b.name + "." + j.bCol, NewColumn: j.aCol})
		case j.b == b && placed&j.a.bit() != 0:
			keys = append(keys, JoinKey{CurQualified: j.a.name + "." + j.aCol, NewColumn: j.bCol})
		}
	}

	bindCols := make([]string, len(bindJoins))
	for i, bp := range bindJoins {
		bindCols[i] = bp.Column
	}
	// One probe per distinct feeder combination, bounded by the current
	// cardinality and — when a feeder column's distinct count is known —
	// by the values that can exist at all. An IN-capable source answers
	// them in ⌈probes/batch⌉ batched queries, which shrinks the per-query
	// overhead term while the transfer term is unchanged.
	probes := 1.0
	if len(bindJoins) > 0 {
		probes = math.Max(curRows, 1)
		if len(bindJoins) == 1 {
			if fb, fcol, ok := lq.bindingOf(bindJoins[0].FromQualified); ok {
				if d := pb.cm.distinctOf(fb, fcol); d > 0 && float64(d) < probes {
					probes = float64(d)
				}
			}
		}
	}
	queries := probes
	batch := pb.e.batchSizeFor(b.caps, len(bindJoins))
	if batch > 1 {
		queries = math.Ceil(probes / float64(batch))
	}
	perProbe := pb.cm.accessRows(b, b.pushed, bindCols)
	transfer := perProbe * probes
	cost = pb.cm.perQueryCost(b)*queries + b.w.Cost().PerTuple*transfer

	// Cardinality after the step's joins. Keys on a bound column carry no
	// extra selectivity: the per-probe transfer estimate is already
	// conditioned on that equality.
	if placed == 0 {
		outRows = perProbe
	} else {
		bound := map[string]bool{}
		for _, c := range bindCols {
			bound[c] = true
		}
		outRows = curRows * perProbe
		for _, k := range keys {
			if bound[k.NewColumn] {
				continue
			}
			fb, fcol, ok := lq.bindingOf(k.CurQualified)
			if !ok {
				fb = nil
			}
			outRows *= pb.cm.joinSelectivity(fb, fcol, b, k.NewColumn)
		}
		if outRows < 1 {
			outRows = 1
		}
	}

	stepBatch := 0
	if len(bindJoins) > 0 {
		stepBatch = batch
	}
	step = PlanStep{
		Binding:    b.name,
		Relation:   b.relation,
		Source:     b.w.Source(),
		Pushed:     b.pushed,
		Local:      b.local,
		LocalPreds: b.localPreds,
		BindJoins:  bindJoins,
		JoinKeys:   keys,
		BatchSize:  stepBatch,
		EstRows:    transfer,
		EstQueries: queries,
		EstCost:    cost,
		SourceCost: b.w.Cost(),
	}
	return step, outRows, cost, true
}

// bindingOf resolves a qualified column ("rl.currency") back onto its
// binding and plain column.
func (lq *logicalQuery) bindingOf(qualified string) (*relBinding, string, bool) {
	for i := 0; i < len(qualified); i++ {
		if qualified[i] == '.' {
			name, col := qualified[:i], qualified[i+1:]
			for _, b := range lq.rels {
				if b.name == name {
					return b, col, true
				}
			}
			return nil, "", false
		}
	}
	return nil, "", false
}

// greedyOrder picks the cheapest feasible access at each step — the
// legacy ordering, kept as the DisableReorder ablation and the fallback
// for very wide FROM clauses. Ties resolve to FROM order.
func (pb *planBuilder) greedyOrder() ([]int, error) {
	n := len(pb.lq.rels)
	order := make([]int, 0, n)
	var placed uint64
	curRows := 1.0
	for len(order) < n {
		bestIdx := -1
		bestCost := 0.0
		bestRows := 0.0
		for _, b := range pb.lq.rels {
			if placed&b.bit() != 0 {
				continue
			}
			_, outRows, cost, ok := pb.candidate(b, placed, curRows)
			if !ok {
				continue
			}
			if bestIdx < 0 || cost < bestCost {
				bestIdx, bestCost, bestRows = b.idx, cost, outRows
			}
		}
		if bestIdx < 0 {
			return nil, errNoFeasibleOrder()
		}
		order = append(order, bestIdx)
		placed |= 1 << uint(bestIdx)
		curRows = bestRows
	}
	return order, nil
}

// dpOrder runs the Selinger-style dynamic program: for every placement
// mask, the cheapest left-deep prefix reaching it, extended one feasible
// relation at a time. States are a dense slice indexed by mask — no map
// iteration anywhere — so enumeration order, and therefore tie-breaking,
// is fixed.
func (pb *planBuilder) dpOrder() ([]int, error) {
	n := len(pb.lq.rels)
	type dpState struct {
		cost float64
		rows float64
		last int // relation placed to reach this mask
		prev uint64
		ok   bool
	}
	best := make([]dpState, 1<<uint(n))
	best[0] = dpState{cost: 0, rows: 1, last: -1, ok: true}
	full := uint64(1<<uint(n)) - 1
	for mask := uint64(0); mask <= full; mask++ {
		st := best[mask]
		if !st.ok {
			continue
		}
		for _, b := range pb.lq.rels {
			if mask&b.bit() != 0 {
				continue
			}
			_, outRows, cost, ok := pb.candidate(b, mask, st.rows)
			if !ok {
				continue
			}
			next := mask | b.bit()
			total := st.cost + cost
			if !best[next].ok || total < best[next].cost {
				best[next] = dpState{cost: total, rows: outRows, last: b.idx, prev: mask, ok: true}
			}
		}
	}
	if !best[full].ok {
		return nil, errNoFeasibleOrder()
	}
	order := make([]int, n)
	for mask, i := full, n-1; mask != 0; i-- {
		order[i] = best[mask].last
		mask = best[mask].prev
	}
	return order, nil
}

// build materializes an access order into the executable plan: candidate
// steps replayed in order, residual predicates attached to the first step
// after which all their bindings are placed.
func (pb *planBuilder) build(order []int) (*BranchPlan, error) {
	lq := pb.lq
	sel := lq.sel
	plan := &BranchPlan{Limit: sel.Limit, Distinct: sel.Distinct, OrderBy: sel.OrderBy, Items: sel.Items}
	var placed uint64
	curRows := 1.0
	residualDone := make([]bool, len(lq.residuals))
	for _, idx := range order {
		b := lq.rels[idx]
		step, outRows, cost, ok := pb.candidate(b, placed, curRows)
		if !ok {
			return nil, errNoFeasibleOrder()
		}
		placed |= b.bit()
		curRows = outRows
		for ri, r := range lq.residuals {
			if residualDone[ri] || r.mask&^placed != 0 {
				continue
			}
			residualDone[ri] = true
			step.AfterPreds = append(step.AfterPreds, r.expr)
		}
		plan.EstCost += cost
		plan.Steps = append(plan.Steps, step)
	}
	return plan, nil
}

// simpleFilter recognizes column-op-constant predicates (either side).
func simpleFilter[T any](p sqlparse.Expr, resolve func(*sqlparse.ColRef) (T, string, error)) (wrapper.Filter, T, bool, error) {
	var zero T
	b, ok := p.(*sqlparse.BinaryExpr)
	if !ok || !isCompare(b.Op) {
		return wrapper.Filter{}, zero, false, nil
	}
	col, isColL := b.L.(*sqlparse.ColRef)
	colR, isColR := b.R.(*sqlparse.ColRef)
	lit, litOK := literalValue(b.R)
	litL, litLOK := literalValue(b.L)
	switch {
	case isColL && litOK:
		bind, name, err := resolve(col)
		if err != nil {
			return wrapper.Filter{}, zero, false, err
		}
		return wrapper.Filter{Column: name, Op: b.Op, Value: lit}, bind, true, nil
	case isColR && litLOK:
		bind, name, err := resolve(colR)
		if err != nil {
			return wrapper.Filter{}, zero, false, err
		}
		return wrapper.Filter{Column: name, Op: flipOp(b.Op), Value: litL}, bind, true, nil
	}
	return wrapper.Filter{}, zero, false, nil
}

type equiJoinPred[T any] struct {
	a, b       T
	aCol, bCol string
}

// equiJoin recognizes binding-to-binding equality predicates.
func equiJoin[T comparable](p sqlparse.Expr, resolve func(*sqlparse.ColRef) (T, string, error)) (equiJoinPred[T], bool, error) {
	var zero equiJoinPred[T]
	b, ok := p.(*sqlparse.BinaryExpr)
	if !ok || b.Op != "=" {
		return zero, false, nil
	}
	lc, lok := b.L.(*sqlparse.ColRef)
	rc, rok := b.R.(*sqlparse.ColRef)
	if !lok || !rok {
		return zero, false, nil
	}
	lb, lcol, err := resolve(lc)
	if err != nil {
		return zero, false, err
	}
	rb, rcol, err := resolve(rc)
	if err != nil {
		return zero, false, err
	}
	if lb == rb {
		return zero, false, nil // same-binding equality is a local pred
	}
	return equiJoinPred[T]{a: lb, b: rb, aCol: lcol, bCol: rcol}, true, nil
}

func isCompare(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op
}

func literalValue(e sqlparse.Expr) (relalg.Value, bool) {
	switch e := e.(type) {
	case sqlparse.NumberLit:
		return relalg.NumV(float64(e)), true
	case sqlparse.StringLit:
		return relalg.StrV(string(e)), true
	case sqlparse.BoolLit:
		return relalg.BoolV(bool(e)), true
	case sqlparse.NullLit:
		return relalg.Null, true
	case *sqlparse.UnaryExpr:
		if e.Op == "-" {
			if n, ok := e.X.(sqlparse.NumberLit); ok {
				return relalg.NumV(-float64(n)), true
			}
		}
	}
	return relalg.Null, false
}
