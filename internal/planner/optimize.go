package planner

import (
	"fmt"
	"math"

	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/wrapper"
)

// Selectivity guesses used by the cost model.
const (
	selEq    = 0.1
	selRange = 0.4
	selNeq   = 0.9
	selJoin  = 0.1
)

// Plan builds the capability- and cost-aware plan for one SELECT block:
// it classifies predicates (pushable filter / local filter / join key /
// residual), then greedily orders source accesses, admitting a relation
// only once its required bindings can be fed by constants or by columns
// of relations already placed (a bind join), and preferring the cheapest
// feasible access at each step.
func (e *Executor) Plan(sel *sqlparse.Select) (*BranchPlan, error) {
	type bindingCtx struct {
		name, relation string
		schema         relalg.Schema
		caps           wrapper.Capabilities
		w              wrapper.Wrapper
	}
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("planner: query has no FROM clause")
	}
	bindings := make([]*bindingCtx, 0, len(sel.From))
	byName := map[string]*bindingCtx{}
	for _, ref := range sel.From {
		w, err := e.Catalog.WrapperFor(ref.Table)
		if err != nil {
			return nil, err
		}
		schema, err := w.Schema(ref.Table)
		if err != nil {
			return nil, err
		}
		caps, err := w.Capabilities(ref.Table)
		if err != nil {
			return nil, err
		}
		b := &bindingCtx{name: ref.Binding(), relation: ref.Table, schema: schema, caps: caps, w: w}
		if byName[b.name] != nil {
			return nil, fmt.Errorf("planner: duplicate binding %s", b.name)
		}
		bindings = append(bindings, b)
		byName[b.name] = b
	}

	// resolve maps a column reference onto (binding, plain column).
	resolve := func(c *sqlparse.ColRef) (*bindingCtx, string, error) {
		if c.Table != "" {
			b := byName[c.Table]
			if b == nil {
				return nil, "", fmt.Errorf("planner: no binding %s for %s", c.Table, c)
			}
			idx := b.schema.Index(c.Column)
			if idx < 0 {
				return nil, "", fmt.Errorf("planner: %s has no column %s", b.relation, c.Column)
			}
			return b, b.schema.Columns[idx].Name, nil
		}
		var found *bindingCtx
		col := ""
		for _, b := range bindings {
			if idx := b.schema.Index(c.Column); idx >= 0 {
				if found != nil {
					return nil, "", fmt.Errorf("planner: column %s is ambiguous", c.Column)
				}
				found, col = b, b.schema.Columns[idx].Name
			}
		}
		if found == nil {
			return nil, "", fmt.Errorf("planner: unknown column %s", c.Column)
		}
		return found, col, nil
	}

	// predBindings returns the set of bindings a predicate mentions.
	predBindings := func(p sqlparse.Expr) (map[string]bool, error) {
		out := map[string]bool{}
		for _, c := range sqlparse.ColumnsOf(p) {
			b, _, err := resolve(c)
			if err != nil {
				return nil, err
			}
			out[b.name] = true
		}
		return out, nil
	}

	// Classify WHERE conjuncts.
	type joinPred struct {
		a, b       *bindingCtx
		aCol, bCol string
		expr       sqlparse.Expr
	}
	filters := map[string][]wrapper.Filter{}   // binding -> simple filters
	localPreds := map[string][]sqlparse.Expr{} // binding -> complex single-binding preds
	var joins []joinPred
	type residual struct {
		expr  sqlparse.Expr
		binds map[string]bool
	}
	var residuals []residual

	for _, p := range sqlparse.Conjuncts(sel.Where) {
		if f, b, ok, err := simpleFilter(p, resolve); err != nil {
			return nil, err
		} else if ok {
			filters[b.name] = append(filters[b.name], f)
			continue
		}
		if jp, ok, err := equiJoin(p, resolve); err != nil {
			return nil, err
		} else if ok {
			joins = append(joins, joinPred{a: jp.a, b: jp.b, aCol: jp.aCol, bCol: jp.bCol, expr: p})
			continue
		}
		bs, err := predBindings(p)
		if err != nil {
			return nil, err
		}
		if len(bs) == 1 {
			for name := range bs {
				localPreds[name] = append(localPreds[name], p)
			}
			continue
		}
		residuals = append(residuals, residual{expr: p, binds: bs})
	}

	// Greedy ordering.
	plan := &BranchPlan{Limit: sel.Limit, Distinct: sel.Distinct, OrderBy: sel.OrderBy, Items: sel.Items}
	placed := map[string]bool{}
	placedCols := map[string]string{} // "binding.col" -> qualified name available
	curRows := 1.0
	joinUsed := make([]bool, len(joins))
	residualDone := make([]bool, len(residuals))

	estimateFetched := func(b *bindingCtx, pushed []wrapper.Filter, bindCount int) float64 {
		rows := float64(b.w.EstimateRows(b.relation))
		for _, f := range pushed {
			switch f.Op {
			case "=":
				rows *= selEq
			case "<>":
				rows *= selNeq
			default:
				rows *= selRange
			}
		}
		for i := 0; i < bindCount; i++ {
			rows *= selEq
		}
		if rows < 1 {
			rows = 1
		}
		return rows
	}

	for len(plan.Steps) < len(bindings) {
		type candidate struct {
			b       *bindingCtx
			step    PlanStep
			estRows float64
			estCost float64
			fromIdx int
		}
		var best *candidate
		for fi, b := range bindings {
			if placed[b.name] {
				continue
			}
			// Partition this binding's simple filters into pushed/local.
			var pushed, local []wrapper.Filter
			required := map[string]bool{}
			for _, rc := range b.caps.RequiredBindings {
				required[rc] = true
			}
			for _, f := range filters[b.name] {
				pushable := b.caps.Selection || (f.Op == "=" && required[f.Column])
				if e.DisablePushdown && !(f.Op == "=" && required[f.Column]) {
					pushable = false
				}
				if pushable {
					pushed = append(pushed, f)
				} else {
					local = append(local, f)
				}
			}
			// Required bindings not covered by constant filters must come
			// from join predicates to placed bindings.
			covered := map[string]bool{}
			for _, f := range pushed {
				if f.Op == "=" {
					covered[f.Column] = true
				}
			}
			var bindJoins []BindPair
			feasible := true
			for _, rc := range b.caps.RequiredBindings {
				if covered[rc] {
					continue
				}
				fed := ""
				for ji, j := range joins {
					if joinUsed[ji] {
						continue
					}
					if j.a == b && j.aCol == rc && placed[j.b.name] {
						fed = j.b.name + "." + j.bCol
					}
					if j.b == b && j.bCol == rc && placed[j.a.name] {
						fed = j.a.name + "." + j.aCol
					}
					if fed != "" {
						break
					}
				}
				if fed == "" {
					feasible = false
					break
				}
				bindJoins = append(bindJoins, BindPair{Column: rc, FromQualified: fed})
			}
			if !feasible {
				continue
			}
			// Join keys to already-placed bindings.
			var keys []JoinKey
			for _, j := range joins {
				switch {
				case j.a == b && placed[j.b.name]:
					keys = append(keys, JoinKey{CurQualified: j.b.name + "." + j.bCol, NewColumn: j.aCol})
				case j.b == b && placed[j.a.name]:
					keys = append(keys, JoinKey{CurQualified: j.a.name + "." + j.aCol, NewColumn: j.bCol})
				}
			}

			// One probe per distinct feeder combination (bounded by the
			// current cardinality); an IN-capable source answers them in
			// ⌈probes/batch⌉ batched queries, which shrinks the per-query
			// overhead term while the transfer term — tuples priced per
			// probe — is unchanged.
			probes := 1.0
			if len(bindJoins) > 0 {
				probes = curRows
				if probes < 1 {
					probes = 1
				}
			}
			queries := probes
			batch := e.batchSizeFor(b.caps, len(bindJoins))
			if batch > 1 {
				queries = math.Ceil(probes / float64(batch))
			}
			fetched := estimateFetched(b, pushed, len(bindJoins))
			cost := b.w.Cost().PerQuery*queries + b.w.Cost().PerTuple*fetched*probes
			stepBatch := 0
			if len(bindJoins) > 0 {
				stepBatch = batch
			}
			cand := &candidate{
				b: b,
				step: PlanStep{
					Binding:    b.name,
					Relation:   b.relation,
					Source:     b.w.Source(),
					Pushed:     pushed,
					Local:      local,
					LocalPreds: localPreds[b.name],
					BindJoins:  bindJoins,
					JoinKeys:   keys,
					BatchSize:  stepBatch,
					EstRows:    fetched,
					EstCost:    cost,
				},
				estRows: fetched,
				estCost: cost,
				fromIdx: fi,
			}
			if best == nil || cand.estCost < best.estCost ||
				(cand.estCost == best.estCost && cand.fromIdx < best.fromIdx) {
				best = cand
			}
		}
		if best == nil {
			return nil, fmt.Errorf("planner: cannot satisfy required bindings of the remaining relations (no feasible access order)")
		}

		// Mark join predicates consumed by this step.
		for ji, j := range joins {
			if joinUsed[ji] {
				continue
			}
			if (j.a == best.b && placed[j.b.name]) || (j.b == best.b && placed[j.a.name]) {
				joinUsed[ji] = true
			}
		}
		placed[best.b.name] = true
		for _, col := range best.b.schema.Columns {
			placedCols[best.b.name+"."+col.Name] = best.b.name + "." + col.Name
		}
		// Residuals whose bindings are now all placed run after this step.
		for ri, r := range residuals {
			if residualDone[ri] {
				continue
			}
			all := true
			for name := range r.binds {
				if !placed[name] {
					all = false
					break
				}
			}
			if all {
				residualDone[ri] = true
				best.step.AfterPreds = append(best.step.AfterPreds, r.expr)
			}
		}

		// Update the running cardinality estimate.
		if len(plan.Steps) == 0 {
			curRows = best.estRows
		} else {
			sel := 1.0
			for range best.step.JoinKeys {
				sel *= selJoin
			}
			curRows = curRows * best.estRows * sel
			if curRows < 1 {
				curRows = 1
			}
		}
		plan.EstCost += best.estCost
		plan.Steps = append(plan.Steps, best.step)
	}
	return plan, nil
}

// simpleFilter recognizes column-op-constant predicates (either side).
func simpleFilter[T any](p sqlparse.Expr, resolve func(*sqlparse.ColRef) (T, string, error)) (wrapper.Filter, T, bool, error) {
	var zero T
	b, ok := p.(*sqlparse.BinaryExpr)
	if !ok || !isCompare(b.Op) {
		return wrapper.Filter{}, zero, false, nil
	}
	col, isColL := b.L.(*sqlparse.ColRef)
	colR, isColR := b.R.(*sqlparse.ColRef)
	lit, litOK := literalValue(b.R)
	litL, litLOK := literalValue(b.L)
	switch {
	case isColL && litOK:
		bind, name, err := resolve(col)
		if err != nil {
			return wrapper.Filter{}, zero, false, err
		}
		return wrapper.Filter{Column: name, Op: b.Op, Value: lit}, bind, true, nil
	case isColR && litLOK:
		bind, name, err := resolve(colR)
		if err != nil {
			return wrapper.Filter{}, zero, false, err
		}
		return wrapper.Filter{Column: name, Op: flipOp(b.Op), Value: litL}, bind, true, nil
	}
	return wrapper.Filter{}, zero, false, nil
}

type equiJoinPred[T any] struct {
	a, b       T
	aCol, bCol string
}

// equiJoin recognizes binding-to-binding equality predicates.
func equiJoin[T comparable](p sqlparse.Expr, resolve func(*sqlparse.ColRef) (T, string, error)) (equiJoinPred[T], bool, error) {
	var zero equiJoinPred[T]
	b, ok := p.(*sqlparse.BinaryExpr)
	if !ok || b.Op != "=" {
		return zero, false, nil
	}
	lc, lok := b.L.(*sqlparse.ColRef)
	rc, rok := b.R.(*sqlparse.ColRef)
	if !lok || !rok {
		return zero, false, nil
	}
	lb, lcol, err := resolve(lc)
	if err != nil {
		return zero, false, err
	}
	rb, rcol, err := resolve(rc)
	if err != nil {
		return zero, false, err
	}
	if lb == rb {
		return zero, false, nil // same-binding equality is a local pred
	}
	return equiJoinPred[T]{a: lb, b: rb, aCol: lcol, bCol: rcol}, true, nil
}

func isCompare(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case ">":
		return "<"
	case "<=":
		return ">="
	case ">=":
		return "<="
	}
	return op
}

func literalValue(e sqlparse.Expr) (relalg.Value, bool) {
	switch e := e.(type) {
	case sqlparse.NumberLit:
		return relalg.NumV(float64(e)), true
	case sqlparse.StringLit:
		return relalg.StrV(string(e)), true
	case sqlparse.BoolLit:
		return relalg.BoolV(bool(e)), true
	case sqlparse.NullLit:
		return relalg.Null, true
	case *sqlparse.UnaryExpr:
		if e.Op == "-" {
			if n, ok := e.X.(sqlparse.NumberLit); ok {
				return relalg.NumV(-float64(n)), true
			}
		}
	}
	return relalg.Null, false
}
