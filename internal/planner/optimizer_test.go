package planner

// Tests for the layered optimizer: the DP enumerator vs the greedy
// ablation, plan determinism, the adaptive statistics feedback loop, and
// EXPLAIN ANALYZE's actual counters.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
	"repro/internal/wrapper/wrappertest"
)

// skewedCatalog builds the join-order stress scenario: a big relation
// whose source badly underestimates itself, a small one that
// overestimates itself, and a keyed (required-binding) source whose
// per-probe answer is constant — so the probe count, and with it the
// tuples transferred, is decided entirely by the access order.
//
//	a: aRows rows, k unique            (static estimate lies low: 5)
//	b: 5 rows, k in a's first 5 keys   (static estimate lies high: 2000)
//	t: requires k; perK rows per key   (honest static estimate)
//
// Query: SELECT ... FROM a, b, t WHERE t.k = a.k AND t.k = b.k.
// Static-greedy places a first and probes t once per a-key; a learned
// plan places b first and probes t five times.
func skewedCatalog(aRows, perK int) (*Catalog, *wrappertest.Counter) {
	adb := store.NewDB("srcA")
	atab := adb.MustCreateTable("a", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "v", Type: relalg.KindNumber}))
	bdb := store.NewDB("srcB")
	btab := bdb.MustCreateTable("b", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "w", Type: relalg.KindNumber}))
	tdb := store.NewDB("srcT")
	ttab := tdb.MustCreateTable("t", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "p", Type: relalg.KindNumber}))
	for i := 0; i < aRows; i++ {
		k := fmt.Sprintf("k%04d", i)
		atab.MustInsert(relalg.StrV(k), relalg.NumV(float64(i)))
		for j := 0; j < perK; j++ {
			ttab.MustInsert(relalg.StrV(k), relalg.NumV(float64(i*perK+j)))
		}
	}
	for i := 0; i < 5; i++ {
		btab.MustInsert(relalg.StrV(fmt.Sprintf("k%04d", i)), relalg.NumV(float64(i)))
	}

	aw := wrappertest.NewCounter(wrapper.NewRelational(adb))
	aw.RowEstimates = map[string]int{"a": 5}
	bw := wrappertest.NewCounter(wrapper.NewRelational(bdb))
	bw.RowEstimates = map[string]int{"b": 2000}
	tr := wrapper.NewRelational(tdb)
	tr.Require = map[string][]string{"t": {"k"}}
	tw := wrappertest.NewCounter(tr)
	tw.RowEstimates = map[string]int{"t": aRows * perK}

	cat := NewCatalog()
	cat.MustAddSource(aw)
	cat.MustAddSource(bw)
	cat.MustAddSource(tw)
	return cat, tw
}

const skewedQ = "SELECT a.v, b.w, t.p FROM a, b, t WHERE t.k = a.k AND t.k = b.k"

// TestAdaptiveReplanBeatsStaticGreedy is the acceptance scenario: one
// warm-up execution populates the stats store, and the replanned query
// transfers at least 5x fewer source tuples than the DisableReorder
// greedy plan working from static estimates.
func TestAdaptiveReplanBeatsStaticGreedy(t *testing.T) {
	q := sqlparse.MustParse(skewedQ)

	// Today's planner: greedy order, no learning.
	catG, _ := skewedCatalog(200, 5)
	exG := NewExecutor(catG)
	exG.DisableReorder = true
	exG.AdaptiveStats = nil
	resG, err := exG.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	greedyTuples := exG.Stats().TuplesTransferred

	// The adaptive optimizer: warm-up, then replan.
	catA, _ := skewedCatalog(200, 5)
	exA := NewExecutor(catA)
	if _, err := exA.ExecuteCtx(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	coldTuples := exA.Stats().TuplesTransferred
	exA.ResetStats()
	resA, err := exA.ExecuteCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	warmTuples := exA.Stats().TuplesTransferred

	if !relalg.SameTuples(resA, resG) {
		t.Fatalf("adaptive and greedy answers differ:\n%s\nvs\n%s", resA, resG)
	}
	if warmTuples*5 > greedyTuples {
		t.Errorf("warm adaptive plan moved %d tuples vs greedy %d; want >= 5x reduction", warmTuples, greedyTuples)
	}
	if warmTuples >= coldTuples {
		t.Errorf("replanning did not improve transfer: cold %d, warm %d", coldTuples, warmTuples)
	}

	// The learned plan starts from the small relation.
	plan, err := exA.Plan(q.(*sqlparse.Select))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[0].Relation != "b" {
		t.Errorf("warm plan starts at %s, want b:\n%s", plan.Steps[0].Relation, plan.Explain())
	}
}

// TestColdDPNoWorseThanGreedy: without statistics the DP enumerator must
// never transfer more than the greedy order it replaced.
func TestColdDPNoWorseThanGreedy(t *testing.T) {
	q := sqlparse.MustParse(skewedQ)
	catD, _ := skewedCatalog(50, 3)
	exD := NewExecutor(catD)
	exD.AdaptiveStats = nil
	if _, err := exD.Execute(q); err != nil {
		t.Fatal(err)
	}
	catG, _ := skewedCatalog(50, 3)
	exG := NewExecutor(catG)
	exG.AdaptiveStats = nil
	exG.DisableReorder = true
	if _, err := exG.Execute(q); err != nil {
		t.Fatal(err)
	}
	if d, g := exD.Stats().TuplesTransferred, exG.Stats().TuplesTransferred; d > g {
		t.Errorf("cold DP moved %d tuples, greedy %d; DP must not be worse", d, g)
	}
}

// TestPlanDeterminism: the same query yields byte-identical Explain
// output across repeated plans — sequentially and from concurrent
// goroutines (the latter guards map-iteration-order and data-race hazards
// in the enumerator under -race).
func TestPlanDeterminism(t *testing.T) {
	cat, _ := skewedCatalog(50, 3)
	ex := NewExecutor(cat)
	sel := sqlparse.MustParse(skewedQ).(*sqlparse.Select)
	plan, err := ex.Plan(sel)
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Explain()
	for i := 0; i < 10; i++ {
		p, err := ex.Plan(sel)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Explain(); got != want {
			t.Fatalf("run %d: plan differs:\n%s\nvs\n%s", i, got, want)
		}
	}
	var wg sync.WaitGroup
	errs := make([]string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := ex.Plan(sel)
			if err != nil {
				errs[g] = err.Error()
				return
			}
			if got := p.Explain(); got != want {
				errs[g] = "plan differs:\n" + got
			}
		}(g)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Fatal(e)
		}
	}
}

// TestReorderEquivalenceRandomized: over randomized workloads — NULL join
// keys included, one required-binding source — the DP-ordered plan and
// the DisableReorder greedy plan return identical tuple multisets, and
// identical ordered results under ORDER BY.
func TestReorderEquivalenceRandomized(t *testing.T) {
	queries := []string{
		"SELECT x.v, y.w, z.p FROM x, y, z WHERE z.k = x.k AND z.k = y.k",
		"SELECT x.v, y.w, z.p FROM x, y, z WHERE z.k = x.k AND z.k = y.k AND y.w > 3",
		"SELECT x.v, y.w, z.p FROM x, y, z WHERE z.k = x.k AND z.k = y.k ORDER BY x.v, y.w, z.p",
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		build := func() *Catalog {
			mkVal := func(i int) relalg.Value {
				if rng.Intn(6) == 0 {
					return relalg.Null
				}
				return relalg.NumV(float64(i % 7))
			}
			mkKey := func() relalg.Value {
				if rng.Intn(8) == 0 {
					return relalg.Null
				}
				return relalg.StrV(fmt.Sprintf("k%d", rng.Intn(6)))
			}
			xdb := store.NewDB("sx")
			xt := xdb.MustCreateTable("x", relalg.NewSchema(
				relalg.Column{Name: "k", Type: relalg.KindString},
				relalg.Column{Name: "v", Type: relalg.KindNumber}))
			ydb := store.NewDB("sy")
			yt := ydb.MustCreateTable("y", relalg.NewSchema(
				relalg.Column{Name: "k", Type: relalg.KindString},
				relalg.Column{Name: "w", Type: relalg.KindNumber}))
			zdb := store.NewDB("sz")
			zt := zdb.MustCreateTable("z", relalg.NewSchema(
				relalg.Column{Name: "k", Type: relalg.KindString},
				relalg.Column{Name: "p", Type: relalg.KindNumber}))
			for i := 0; i < 10+rng.Intn(20); i++ {
				xt.MustInsert(mkKey(), mkVal(i))
			}
			for i := 0; i < 5+rng.Intn(10); i++ {
				yt.MustInsert(mkKey(), mkVal(i))
			}
			for i := 0; i < 30; i++ {
				zt.MustInsert(relalg.StrV(fmt.Sprintf("k%d", i%6)), relalg.NumV(float64(i)))
			}
			zw := wrapper.NewRelational(zdb)
			zw.Require = map[string][]string{"z": {"k"}}
			cat := NewCatalog()
			cat.MustAddSource(wrapper.NewRelational(xdb))
			cat.MustAddSource(wrapper.NewRelational(ydb))
			cat.MustAddSource(zw)
			return cat
		}
		// Both executors see identical data: the generator is re-seeded
		// per build, so draw the random rows once and reuse the catalog
		// (sources are read-only under query).
		cat := build()
		for qi, q := range queries {
			stmt := sqlparse.MustParse(q)
			exD := NewExecutor(cat)
			resD, err := exD.Execute(stmt)
			if err != nil {
				t.Fatalf("seed %d q%d dp: %v", seed, qi, err)
			}
			exG := NewExecutor(cat)
			exG.DisableReorder = true
			resG, err := exG.Execute(stmt)
			if err != nil {
				t.Fatalf("seed %d q%d greedy: %v", seed, qi, err)
			}
			if !relalg.SameTuples(resD, resG) {
				t.Fatalf("seed %d q%d: DP and greedy disagree:\n%s\nvs\n%s", seed, qi, resD, resG)
			}
			if strings.Contains(q, "ORDER BY") && resD.String() != resG.String() {
				t.Fatalf("seed %d q%d: ordered results differ:\n%s\nvs\n%s", seed, qi, resD, resG)
			}
		}
	}
}

// TestExplainAnalyzeActuals: an analyzed execution fills per-step actual
// rows/queries and the rendered plan shows estimated-vs-actual columns.
func TestExplainAnalyzeActuals(t *testing.T) {
	cat, _ := skewedCatalog(20, 2)
	ex := NewExecutor(cat)
	sess := ex.NewSession(context.Background(), Limits{})
	defer sess.Close()
	plan, err := ex.AnalyzeSelect(sess, sqlparse.MustParse(skewedQ).(*sqlparse.Select))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Actuals == nil || len(plan.Actuals.Steps) != len(plan.Steps) {
		t.Fatal("analyze did not attach per-step actuals")
	}
	var rows, queries int64
	for i := range plan.Actuals.Steps {
		rows += plan.Actuals.Steps[i].Rows.Load()
		queries += plan.Actuals.Steps[i].Queries.Load()
	}
	if rows == 0 || queries == 0 {
		t.Fatalf("actuals not counted: rows=%d queries=%d", rows, queries)
	}
	exp := plan.Explain()
	for _, want := range []string{"est_rows=", "act_rows=", "act_queries=", "act_cost=", "act_branch_rows="} {
		if !strings.Contains(exp, want) {
			t.Errorf("explain lacks %q:\n%s", want, exp)
		}
	}
	// The measured transfer must agree with ExecStats.
	if int(rows) != ex.Stats().TuplesTransferred {
		t.Errorf("actuals count %d tuples, ExecStats %d", rows, ex.Stats().TuplesTransferred)
	}
}

// TestStatsStoreLearning: exact signatures override, shapes average
// across probe values, IN lists normalize to per-value equality, and the
// store stays bounded.
func TestStatsStoreLearning(t *testing.T) {
	s := NewStatsStore()
	eq := func(v string) []wrapper.Filter {
		return []wrapper.Filter{{Column: "k", Op: "=", Value: relalg.StrV(v)}}
	}
	s.ObserveAccess("r", eq("a"), 10)
	s.ObserveAccess("r", eq("b"), 20)
	if rows, ok := s.AccessRows("r", eq("a"), nil); !ok || rows != 10 {
		t.Errorf("exact lookup = %v,%v want 10", rows, ok)
	}
	if rows, ok := s.AccessRows("r", nil, []string{"k"}); !ok || rows != 15 {
		t.Errorf("shape mean = %v,%v want 15", rows, ok)
	}
	// Exact entries keep the latest measurement.
	s.ObserveAccess("r", eq("a"), 30)
	if rows, _ := s.AccessRows("r", eq("a"), nil); rows != 30 {
		t.Errorf("exact re-observation = %v, want 30", rows)
	}
	// An IN query over 4 values counts as 4 probes of the equality shape.
	in := []wrapper.Filter{{Column: "k", Op: wrapper.OpIn, Values: []relalg.Value{
		relalg.StrV("c"), relalg.StrV("d"), relalg.StrV("e"), relalg.StrV("f")}}}
	s2 := NewStatsStore()
	s2.ObserveAccess("r", in, 40)
	if rows, ok := s2.AccessRows("r", nil, []string{"k"}); !ok || rows != 10 {
		t.Errorf("IN shape mean = %v,%v want 10", rows, ok)
	}
	// Bounded: the store evicts FIFO past its cap.
	s3 := NewStatsStore()
	s3.max = 8
	for i := 0; i < 100; i++ {
		s3.ObserveAccess("r", eq(fmt.Sprintf("v%d", i)), i)
	}
	if n := s3.Len(); n > 8 {
		t.Errorf("store grew to %d entries, cap 8", n)
	}
}

// TestStatsFlushAtSessionClose: observations buffer in the session and
// reach the executor's store only when the session closes.
func TestStatsFlushAtSessionClose(t *testing.T) {
	cat, _ := skewedCatalog(10, 1)
	ex := NewExecutor(cat)
	sess := ex.NewSession(context.Background(), Limits{})
	plan, err := ex.Plan(sqlparse.MustParse("SELECT a.v FROM a").(*sqlparse.Select))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.RunSession(sess, plan); err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.AdaptiveStats.RelationRows("a"); ok {
		t.Fatal("observation reached the store before session close")
	}
	sess.Close()
	rows, ok := ex.AdaptiveStats.RelationRows("a")
	if !ok || rows != 10 {
		t.Fatalf("after close: RelationRows(a) = %v,%v want 10", rows, ok)
	}
	if _, ok := ex.AdaptiveStats.SourceLatency("srcA"); !ok {
		t.Error("no latency observed for srcA")
	}
}

// TestLimitDoesNotPoisonStats: a scan cut short by LIMIT never records
// its partial count as the relation's cardinality.
func TestLimitDoesNotPoisonStats(t *testing.T) {
	cat, _ := skewedCatalog(10, 1)
	ex := NewExecutor(cat)
	if _, err := ex.ExecuteCtx(context.Background(),
		sqlparse.MustParse("SELECT a.v FROM a LIMIT 2")); err != nil {
		t.Fatal(err)
	}
	if rows, ok := ex.AdaptiveStats.RelationRows("a"); ok {
		t.Fatalf("truncated scan recorded cardinality %v", rows)
	}
}

// TestTooManyRelationsRejected: placement masks are uint64, so a FROM
// clause beyond 64 relations must fail loudly rather than overflow into
// a silently wrong plan.
func TestTooManyRelationsRejected(t *testing.T) {
	cat, _ := skewedCatalog(1, 1)
	froms := make([]string, 65)
	for i := range froms {
		froms[i] = fmt.Sprintf("a a%d", i)
	}
	q := "SELECT a0.v FROM " + strings.Join(froms, ", ")
	_, err := NewExecutor(cat).Plan(sqlparse.MustParse(q).(*sqlparse.Select))
	if err == nil || !strings.Contains(err.Error(), "at most 64") {
		t.Errorf("err = %v, want the 64-relation refusal", err)
	}
}
