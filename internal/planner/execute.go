package planner

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
)

// Executor plans and runs statements over the catalog's sources, doing
// all cross-source work locally.
type Executor struct {
	Catalog *Catalog
	// Temp, when set, stages every branch result (spilling large ones to
	// disk); Figure 1's second local secondary storage.
	Temp *store.TempStore

	// DisablePushdown keeps every non-required filter local — the E9
	// pushdown ablation.
	DisablePushdown bool
	// ForceNestedLoop disables hash joins — the E9b join ablation.
	ForceNestedLoop bool
	// ForceMergeJoin uses sort-merge instead of hash for keyed joins
	// (ignored when ForceNestedLoop is set).
	ForceMergeJoin bool
	// Parallel executes the branches of a mediated union concurrently
	// (one goroutine per branch). Results are combined in branch order,
	// so answers are deterministic.
	Parallel bool

	mu    sync.Mutex
	stats ExecStats
	seq   int
}

// ExecStats counts the communication work of executed queries.
type ExecStats struct {
	SourceQueries     int
	TuplesTransferred int
	BranchesRun       int
}

// NewExecutor creates an executor over a catalog.
func NewExecutor(cat *Catalog) *Executor {
	return &Executor{Catalog: cat}
}

// Stats snapshots the execution counters.
func (e *Executor) Stats() ExecStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ResetStats zeroes the execution counters.
func (e *Executor) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = ExecStats{}
}

func (e *Executor) countQuery(tuples int) {
	e.mu.Lock()
	e.stats.SourceQueries++
	e.stats.TuplesTransferred += tuples
	e.mu.Unlock()
}

// Execute plans and runs a statement. UNION combines with set semantics
// unless the Union node says ALL.
func (e *Executor) Execute(stmt sqlparse.Statement) (*relalg.Relation, error) {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		return e.ExecuteSelect(s)
	case *sqlparse.Union:
		l, err := e.Execute(s.Left)
		if err != nil {
			return nil, err
		}
		r, err := e.Execute(s.Right)
		if err != nil {
			return nil, err
		}
		return relalg.Union(l, r, s.All)
	}
	return nil, fmt.Errorf("planner: cannot execute %T", stmt)
}

// ExecuteSelect plans and runs one SELECT block.
func (e *Executor) ExecuteSelect(sel *sqlparse.Select) (*relalg.Relation, error) {
	if hasAggregates(sel) {
		return e.executeAggregate(sel)
	}
	plan, err := e.Plan(sel)
	if err != nil {
		return nil, err
	}
	return e.Run(plan)
}

// Run executes a prepared plan.
func (e *Executor) Run(plan *BranchPlan) (*relalg.Relation, error) {
	e.mu.Lock()
	e.stats.BranchesRun++
	e.mu.Unlock()

	var cur *relalg.Relation
	for _, step := range plan.Steps {
		fetched, err := e.fetchStep(&step, cur)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			cur = fetched
		} else {
			cur, err = e.join(cur, fetched, step.JoinKeys, step.Binding)
			if err != nil {
				return nil, err
			}
		}
		if len(step.AfterPreds) > 0 {
			cur, err = relalg.Filter(cur, sqlparse.AndAll(step.AfterPreds))
			if err != nil {
				return nil, err
			}
		}
		if e.Temp != nil {
			e.mu.Lock()
			e.seq++
			key := "step" + strconv.Itoa(e.seq)
			e.mu.Unlock()
			if err := e.Temp.Put(key, cur); err != nil {
				return nil, err
			}
			if cur, err = e.Temp.Get(key); err != nil {
				return nil, err
			}
		}
	}

	// Projection.
	items, err := projectItems(plan.Items, cur)
	if err != nil {
		return nil, err
	}
	out, err := relalg.Project(cur, items)
	if err != nil {
		return nil, err
	}
	if plan.Distinct {
		out = relalg.Distinct(out)
	}
	if len(plan.OrderBy) > 0 {
		keys := make([]relalg.OrderKey, len(plan.OrderBy))
		for i, o := range plan.OrderBy {
			keys[i] = relalg.OrderKey{Expr: o.Expr, Desc: o.Desc}
		}
		// ORDER BY may reference output columns or source columns; sort
		// the projected result when the keys resolve there, otherwise
		// sort before projecting.
		if sorted, err := relalg.Sort(out, keys); err == nil {
			out = sorted
		} else {
			pre, err2 := relalg.Sort(cur, keys)
			if err2 != nil {
				return nil, err
			}
			if out, err2 = relalg.Project(pre, items); err2 != nil {
				return nil, err2
			}
		}
	}
	return relalg.Limit(out, plan.Limit), nil
}

// fetchStep retrieves one relation, honoring bind joins, and applies the
// engine-local filters the source could not.
func (e *Executor) fetchStep(step *PlanStep, cur *relalg.Relation) (*relalg.Relation, error) {
	w, err := e.Catalog.WrapperFor(step.Relation)
	if err != nil {
		return nil, err
	}
	var raw *relalg.Relation
	if len(step.BindJoins) == 0 {
		raw, err = w.Query(wrapper.SourceQuery{Relation: step.Relation, Filters: step.Pushed})
		if err != nil {
			return nil, err
		}
		e.countQuery(raw.Len())
	} else {
		if cur == nil {
			return nil, fmt.Errorf("planner: bind join for %s with no prior result", step.Relation)
		}
		// One source query per distinct combination of feeding values.
		feedIdx := make([]int, len(step.BindJoins))
		for i, bp := range step.BindJoins {
			idx := cur.Schema.Index(bp.FromQualified)
			if idx < 0 {
				return nil, fmt.Errorf("planner: bind join feeder %s missing from intermediate result", bp.FromQualified)
			}
			feedIdx[i] = idx
		}
		seen := map[string]bool{}
		schema, err := w.Schema(step.Relation)
		if err != nil {
			return nil, err
		}
		raw = relalg.NewRelation(step.Relation, schema)
		for _, t := range cur.Tuples {
			key := t.Key(feedIdx)
			if seen[key] {
				continue
			}
			seen[key] = true
			filters := append([]wrapper.Filter(nil), step.Pushed...)
			for i, bp := range step.BindJoins {
				filters = append(filters, wrapper.Filter{Column: bp.Column, Op: "=", Value: t[feedIdx[i]]})
			}
			part, err := w.Query(wrapper.SourceQuery{Relation: step.Relation, Filters: filters})
			if err != nil {
				return nil, err
			}
			e.countQuery(part.Len())
			raw.Tuples = append(raw.Tuples, part.Tuples...)
		}
	}

	rel := raw.Qualify(step.Binding)
	if len(step.Local) > 0 {
		qualified := make([]wrapper.Filter, len(step.Local))
		for i, f := range step.Local {
			qualified[i] = wrapper.Filter{Column: step.Binding + "." + f.Column, Op: f.Op, Value: f.Value}
		}
		if rel, err = wrapper.ApplyFilters(rel, qualified); err != nil {
			return nil, err
		}
	}
	if len(step.LocalPreds) > 0 {
		if rel, err = relalg.Filter(rel, sqlparse.AndAll(step.LocalPreds)); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// join combines the intermediate result with a newly fetched relation.
func (e *Executor) join(cur, next *relalg.Relation, keys []JoinKey, binding string) (*relalg.Relation, error) {
	if len(keys) > 0 && !e.ForceNestedLoop {
		aKeys := make([]string, len(keys))
		bKeys := make([]string, len(keys))
		for i, k := range keys {
			aKeys[i] = k.CurQualified
			bKeys[i] = binding + "." + k.NewColumn
		}
		if e.ForceMergeJoin {
			return relalg.MergeJoin(cur, next, aKeys, bKeys, nil)
		}
		return relalg.HashJoin(cur, next, aKeys, bKeys, nil)
	}
	var pred sqlparse.Expr
	if len(keys) > 0 {
		preds := make([]sqlparse.Expr, len(keys))
		for i, k := range keys {
			preds[i] = sqlparse.Bin("=",
				colRefFromQualified(k.CurQualified),
				colRefFromQualified(binding+"."+k.NewColumn))
		}
		pred = sqlparse.AndAll(preds)
	}
	return relalg.NestedLoopJoin(cur, next, pred)
}

func colRefFromQualified(q string) *sqlparse.ColRef {
	for i := 0; i < len(q); i++ {
		if q[i] == '.' {
			return &sqlparse.ColRef{Table: q[:i], Column: q[i+1:]}
		}
	}
	return &sqlparse.ColRef{Column: q}
}

// projectItems expands the SELECT list against the joined schema.
func projectItems(items []sqlparse.SelectItem, rel *relalg.Relation) ([]relalg.ProjectItem, error) {
	var out []relalg.ProjectItem
	used := map[string]bool{}
	name := func(base string) string {
		if !used[base] {
			used[base] = true
			return base
		}
		for i := 2; ; i++ {
			cand := base + "_" + strconv.Itoa(i)
			if !used[cand] {
				used[cand] = true
				return cand
			}
		}
	}
	for i, it := range items {
		if it.Star {
			for _, col := range rel.Schema.Columns {
				if it.StarTable != "" && !hasPrefix(col.Name, it.StarTable+".") {
					continue
				}
				out = append(out, relalg.ProjectItem{
					Name: name(plainName(col.Name)),
					Expr: colRefFromQualified(col.Name),
				})
			}
			continue
		}
		n := it.Alias
		if n == "" {
			if c, ok := it.Expr.(*sqlparse.ColRef); ok {
				n = c.Column
			} else {
				n = "col" + strconv.Itoa(i+1)
			}
		}
		out = append(out, relalg.ProjectItem{Name: name(n), Expr: it.Expr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("planner: empty projection")
	}
	return out, nil
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func plainName(qualified string) string {
	for i := len(qualified) - 1; i >= 0; i-- {
		if qualified[i] == '.' {
			return qualified[i+1:]
		}
	}
	return qualified
}

func hasAggregates(sel *sqlparse.Select) bool {
	if len(sel.GroupBy) > 0 {
		return true
	}
	for _, it := range sel.Items {
		if !it.Star && relalg.IsAggregate(it.Expr) {
			return true
		}
	}
	if sel.Having != nil {
		return true
	}
	return false
}

// executeAggregate runs a grouped SELECT: plan the SPJ core (projecting
// nothing yet), then group locally.
func (e *Executor) executeAggregate(sel *sqlparse.Select) (*relalg.Relation, error) {
	spj := *sel
	spj.Items = []sqlparse.SelectItem{{Star: true}}
	spj.GroupBy, spj.Having, spj.OrderBy = nil, nil, nil
	spj.Limit = -1
	spj.Distinct = false
	plan, err := e.Plan(&spj)
	if err != nil {
		return nil, err
	}
	wide, err := e.Run(plan)
	if err != nil {
		return nil, err
	}
	// Aggregate over the wide result. Column names were flattened to
	// plain names by projection; regroup using the original expressions,
	// which Schema.Index resolves by unique suffix.
	items := make([]relalg.AggItem, len(sel.Items))
	for i, it := range sel.Items {
		n := it.Alias
		if n == "" {
			if c, ok := it.Expr.(*sqlparse.ColRef); ok {
				n = c.Column
			} else {
				n = "col" + strconv.Itoa(i+1)
			}
		}
		items[i] = relalg.AggItem{Name: n, Expr: it.Expr}
	}
	out, err := relalg.GroupBy(wide, sel.GroupBy, items, sel.Having)
	if err != nil {
		return nil, err
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]relalg.OrderKey, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			keys[i] = relalg.OrderKey{Expr: o.Expr, Desc: o.Desc}
		}
		if out, err = relalg.Sort(out, keys); err != nil {
			return nil, err
		}
	}
	if sel.Distinct {
		out = relalg.Distinct(out)
	}
	return relalg.Limit(out, sel.Limit), nil
}

// ExecuteMediation runs a mediated query: every branch, combined with the
// mediation's union semantics, then the post-union step when present.
// With Executor.Parallel set, branches run concurrently (they are
// independent by construction: each is one conflict-resolution case).
func (e *Executor) ExecuteMediation(med *core.Mediation) (*relalg.Relation, error) {
	if len(med.Branches) == 0 {
		return nil, fmt.Errorf("planner: mediation has no branches")
	}
	results := make([]*relalg.Relation, len(med.Branches))
	if e.Parallel && len(med.Branches) > 1 {
		errs := make([]error, len(med.Branches))
		var wg sync.WaitGroup
		for i, b := range med.Branches {
			wg.Add(1)
			go func(i int, b *sqlparse.Select) {
				defer wg.Done()
				results[i], errs[i] = e.ExecuteSelect(b)
			}(i, b)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for i, b := range med.Branches {
			res, err := e.ExecuteSelect(b)
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
	}

	united := results[0]
	var err error
	for _, res := range results[1:] {
		if united, err = relalg.Union(united, res, med.UnionAll); err != nil {
			return nil, err
		}
	}
	if med.Post == nil {
		return united, nil
	}
	return e.runPost(med.Post, united)
}

// runPost applies a mediation's post-union step.
func (e *Executor) runPost(post *core.Post, union *relalg.Relation) (*relalg.Relation, error) {
	out := union
	var err error
	if len(post.GroupBy) > 0 || anyAggItems(post.Items) {
		items := make([]relalg.AggItem, len(post.Items))
		for i, it := range post.Items {
			items[i] = relalg.AggItem{Name: it.Alias, Expr: it.Expr}
			if items[i].Name == "" {
				items[i].Name = "col" + strconv.Itoa(i+1)
			}
		}
		if out, err = relalg.GroupBy(out, post.GroupBy, items, post.Having); err != nil {
			return nil, err
		}
	} else if len(post.Items) > 0 {
		items := make([]relalg.ProjectItem, len(post.Items))
		for i, it := range post.Items {
			items[i] = relalg.ProjectItem{Name: it.Alias, Expr: it.Expr}
			if items[i].Name == "" {
				if c, ok := it.Expr.(*sqlparse.ColRef); ok {
					items[i].Name = c.Column
				} else {
					items[i].Name = "col" + strconv.Itoa(i+1)
				}
			}
		}
		if out, err = relalg.Project(out, items); err != nil {
			return nil, err
		}
	}
	if post.Distinct {
		out = relalg.Distinct(out)
	}
	if len(post.OrderBy) > 0 {
		keys := make([]relalg.OrderKey, len(post.OrderBy))
		for i, o := range post.OrderBy {
			keys[i] = relalg.OrderKey{Expr: o.Expr, Desc: o.Desc}
		}
		if out, err = relalg.Sort(out, keys); err != nil {
			return nil, err
		}
	}
	return relalg.Limit(out, post.Limit), nil
}

func anyAggItems(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if !it.Star && relalg.IsAggregate(it.Expr) {
			return true
		}
	}
	return false
}
