package planner

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
)

// Executor plans and runs statements over the catalog's sources, doing
// all cross-source work locally. Execution is streaming: plans compile to
// pull-based iterator trees (see stream.go), so tuples flow through a
// branch one at a time and early exits stop pulling from the sources.
// Every run is governed by a query Session (see session.go) carrying
// cancellation, deadline and resource limits; the context-free entry
// points are thin wrappers over an ungoverned background session.
type Executor struct {
	Catalog *Catalog
	// Temp, when set, stages every pipeline breaker and step boundary
	// (spilling large ones to disk); Figure 1's second local secondary
	// storage.
	Temp *store.TempStore

	// DisablePushdown keeps every non-required filter local — the E9
	// pushdown ablation.
	DisablePushdown bool
	// ForceNestedLoop disables hash joins — the E9b join ablation.
	ForceNestedLoop bool
	// ForceMergeJoin uses sort-merge instead of hash for keyed joins
	// (ignored when ForceNestedLoop is set).
	ForceMergeJoin bool
	// Parallel executes the branches of a mediated union concurrently
	// (one goroutine per branch). Results are combined in branch order,
	// so answers are deterministic.
	Parallel bool
	// DisableBatching keeps bind joins on one query per feeder value even
	// against IN-capable sources — the batching ablation.
	DisableBatching bool
	// DefaultParallelism bounds the workers of intra-query parallel
	// operators (exchange joins, partitioned sorts/group-bys, scan
	// fan-outs) for sessions that do not set Limits.MaxParallelism.
	// Zero or one keeps every pipeline serial — the library default, so
	// embedding code sees the historical plans; the binaries (coinserver,
	// coinquery) default it to GOMAXPROCS. See parallel.go.
	DefaultParallelism int
	// DisableReorder keeps the legacy greedy access ordering instead of
	// the dynamic-programming enumerator — the join-order ablation.
	DisableReorder bool

	// Retry bounds per-operation retries of faulted source accesses
	// (retry.go). The zero value keeps the pre-retry semantics: one
	// attempt per operation.
	Retry RetryPolicy
	// Breaker configures the per-source circuit breakers (breaker.go);
	// the zero value uses the defaults. Breaking is on unless
	// DisableBreaker is set.
	Breaker BreakerPolicy
	// DisableBreaker turns per-source circuit breaking off (every attempt
	// is admitted regardless of the source's recent health).
	DisableBreaker bool

	// PerQueryCostHook, when non-nil, rescales the cost model's per-query
	// price of one access against the named source. It is a test seam for
	// plan-regression harnesses (internal/golden): flipping a cost
	// constant through it seeds a deliberate, deterministic plan change
	// that the golden semantic diff must catch. Production code leaves it
	// nil.
	PerQueryCostHook func(source string, perQuery float64) float64

	// AdaptiveStats is the executor's feedback store: completed source
	// accesses record their observed cardinalities and latencies here
	// (via the session, at close), and subsequent plans price with them
	// instead of the wrappers' static guesses. NewExecutor installs one;
	// set nil to plan from static estimates only (the learning ablation).
	AdaptiveStats *StatsStore

	mu    sync.Mutex
	stats ExecStats
	// disp holds the per-source dispatchers (admission pools) of the
	// source access layer; see access.go.
	disp dispatcherPool
}

// ExecStats counts the communication work of executed queries. Under
// streaming execution TuplesTransferred counts tuples actually pulled
// across the wrapper boundary, so a LIMIT n query over a large source
// reports O(n), not the source size — and a canceled query's counters
// stop growing as soon as its pipelines notice the cancellation.
type ExecStats struct {
	// SourceQueries counts queries that actually reached a source.
	SourceQueries     int
	TuplesTransferred int
	BranchesRun       int
	// CacheHits counts probes answered from the session result cache
	// (including single-flight joins of an in-flight identical probe)
	// without contacting the source; they are deliberately not part of
	// SourceQueries, which stays a faithful communication count.
	CacheHits int
	// Retries counts source-operation retries actually performed (each
	// one a fresh attempt after a backoff sleep); the first attempt of an
	// operation is not a retry.
	Retries int
	// BreakerTrips counts circuit-breaker openings: a closed breaker
	// passing its failure threshold, or a half-open probe failing back to
	// open.
	BreakerTrips int
	// BranchesFailed counts mediation branches dropped by partial-results
	// degradation (Limits.PartialResults); each dropped branch also
	// produces a Warning on the session.
	BranchesFailed int
}

// NewExecutor creates an executor over a catalog, with an empty adaptive
// statistics store ready to learn from executions.
func NewExecutor(cat *Catalog) *Executor {
	return &Executor{Catalog: cat, AdaptiveStats: NewStatsStore()}
}

// Stats snapshots the execution counters.
func (e *Executor) Stats() ExecStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ResetStats zeroes the execution counters.
func (e *Executor) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = ExecStats{}
}

func (e *Executor) countQuery(tuples int) {
	e.mu.Lock()
	e.stats.SourceQueries++
	e.stats.TuplesTransferred += tuples
	e.mu.Unlock()
}

// Execute plans and runs a statement under a background, ungoverned
// session. UNION combines with set semantics unless the Union node says
// ALL.
func (e *Executor) Execute(stmt sqlparse.Statement) (*relalg.Relation, error) {
	//lint:allow ctxflow Execute is the documented ungoverned convenience; governed callers use ExecuteCtx
	return e.ExecuteCtx(context.Background(), stmt)
}

// ExecuteCtx plans and runs a statement under ctx: canceling ctx aborts
// the query mid-stream, source fetches included.
func (e *Executor) ExecuteCtx(ctx context.Context, stmt sqlparse.Statement) (*relalg.Relation, error) {
	sess := e.NewSession(ctx, Limits{})
	defer sess.Close()
	return e.ExecuteSession(sess, stmt)
}

// ExecuteSession plans and runs a statement under an existing session.
func (e *Executor) ExecuteSession(sess *Session, stmt sqlparse.Statement) (*relalg.Relation, error) {
	if s, ok := stmt.(*sqlparse.Select); ok {
		return e.executeSelect(sess, s)
	}
	it, err := e.statementStream(sess, stmt)
	if err != nil {
		return nil, err
	}
	return relalg.Collect(sess.Context(), it, "")
}

// ExecuteSelect plans and runs one SELECT block under a background,
// ungoverned session.
func (e *Executor) ExecuteSelect(sel *sqlparse.Select) (*relalg.Relation, error) {
	return e.executeSelect(nil, sel)
}

// executeSelect plans and runs one SELECT block under sess.
func (e *Executor) executeSelect(sess *Session, sel *sqlparse.Select) (*relalg.Relation, error) {
	if hasAggregates(sel) {
		it, err := e.aggregateStream(sess, sel)
		if err != nil {
			return nil, err
		}
		return relalg.Collect(sess.Context(), it, "")
	}
	plan, err := e.PlanCtx(sess.Context(), sel)
	if err != nil {
		return nil, err
	}
	e.ParallelizePlan(plan, sess)
	return e.RunSession(sess, plan)
}

// Run executes a prepared plan under a background, ungoverned session.
func (e *Executor) Run(plan *BranchPlan) (*relalg.Relation, error) {
	return e.RunSession(nil, plan)
}

// RunSession executes a prepared plan under sess by compiling it to an
// iterator tree and draining it.
func (e *Executor) RunSession(sess *Session, plan *BranchPlan) (*relalg.Relation, error) {
	it, err := e.BuildStream(sess, plan)
	if err != nil {
		return nil, err
	}
	name := ""
	if len(plan.Steps) == 1 {
		name = plan.Steps[0].Relation
	}
	return relalg.Collect(sess.Context(), it, name)
}

// fetchBindStep retrieves one relation through its bind joins and
// applies the engine-local filters the source could not. The distinct
// combinations of feeding values are collected from the materialized
// intermediate result (combinations containing NULL are skipped outright:
// a `col = NULL` probe can never join under SQL semantics, and a Web form
// would match the rendered "NULL" literally); against an InList-capable
// source they are batched into ⌈N/BatchSize⌉ IN-list queries, otherwise
// each becomes one equality probe. All resulting queries flow through the
// source access layer — concurrent up to the per-source dispatcher
// bounds, deduplicated by the session result cache, cancelled as a group
// on the first failure — and the combined answer is identical, tuple for
// tuple and in order, to issuing the probes serially per value.
func (e *Executor) fetchBindStep(ctx context.Context, sess *Session, step *PlanStep, act *StepActuals, cur *relalg.Relation) (*relalg.Relation, error) {
	w, err := e.Catalog.WrapperFor(step.Relation)
	if err != nil {
		return nil, err
	}
	feedIdx := make([]int, len(step.BindJoins))
	for i, bp := range step.BindJoins {
		idx := cur.Schema.Index(bp.FromQualified)
		if idx < 0 {
			return nil, fmt.Errorf("planner: bind join feeder %s missing from intermediate result", bp.FromQualified)
		}
		feedIdx[i] = idx
	}
	schema, err := w.Schema(step.Relation)
	if err != nil {
		return nil, err
	}

	// Distinct non-NULL feeder combinations, in first-appearance order.
	// The interned encoder keeps dedup allocation-free per tuple: only a
	// new distinct combination copies its key into the map.
	enc := relalg.NewKeyEncoder(nil)
	seen := map[string]bool{}
	var combos []relalg.Tuple
	for _, t := range cur.Tuples {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hasNull := false
		for _, fi := range feedIdx {
			if t[fi].IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			continue
		}
		key := enc.Key(t, feedIdx)
		if seen[string(key)] {
			continue
		}
		seen[string(key)] = true
		vals := make(relalg.Tuple, len(feedIdx))
		for i, fi := range feedIdx {
			vals[i] = t[fi]
		}
		combos = append(combos, vals)
	}

	raw := relalg.NewRelation(step.Relation, schema)
	if len(combos) > 0 {
		// The planner recorded its batching decision on the step; derive
		// it only for hand-built plans, so Explain always reports what
		// execution does.
		batch := step.BatchSize
		if batch <= 0 {
			caps, err := w.Capabilities(step.Relation)
			if err != nil {
				return nil, err
			}
			batch = e.batchSizeFor(caps, len(step.BindJoins))
		}
		queries := len(combos)
		if batch > 1 {
			queries = (len(combos) + batch - 1) / batch
		}
		var parts []*relalg.Relation
		if batch > 1 {
			parts, err = e.fetchBindBatched(ctx, sess, w, step, schema, combos, batch)
		} else {
			parts, err = e.fetchBindProbes(ctx, sess, w, step, combos)
		}
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			raw.Tuples = append(raw.Tuples, p.Tuples...)
		}
		if act != nil {
			act.Queries.Add(int64(queries))
			act.Rows.Add(int64(len(raw.Tuples)))
		}
	}

	rel := raw.Qualify(step.Binding)
	if len(step.Local) > 0 {
		qualified := make([]wrapper.Filter, len(step.Local))
		for i, f := range step.Local {
			qualified[i] = wrapper.Filter{Column: step.Binding + "." + f.Column, Op: f.Op, Value: f.Value}
		}
		if rel, err = wrapper.ApplyFilters(rel, qualified); err != nil {
			return nil, err
		}
	}
	if len(step.LocalPreds) > 0 {
		if rel, err = relalg.Filter(rel, sqlparse.AndAll(step.LocalPreds)); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// fetchBindProbes issues one equality probe per feeder combination,
// concurrently through the source access layer, returning the answers in
// combination order (so the combined result matches serial probing).
func (e *Executor) fetchBindProbes(ctx context.Context, sess *Session, w wrapper.Wrapper, step *PlanStep, combos []relalg.Tuple) ([]*relalg.Relation, error) {
	queries := make([]wrapper.SourceQuery, len(combos))
	for i, vals := range combos {
		filters := append([]wrapper.Filter(nil), step.Pushed...)
		for j, bp := range step.BindJoins {
			filters = append(filters, wrapper.Filter{Column: bp.Column, Op: "=", Value: vals[j]})
		}
		queries[i] = wrapper.SourceQuery{Relation: step.Relation, Filters: filters}
	}
	return e.fetchAll(ctx, sess, w, queries)
}

// fetchBindBatched issues one IN-list query per batch of feeder values
// (single-column bind joins only — an IN list expresses one column), then
// regroups every batch answer by feeder value so the combined result is
// identical, tuple for tuple, to the per-value probe path: sources return
// a batch in their own order, not grouped by probe value.
func (e *Executor) fetchBindBatched(ctx context.Context, sess *Session, w wrapper.Wrapper, step *PlanStep, schema relalg.Schema, combos []relalg.Tuple, batch int) ([]*relalg.Relation, error) {
	bp := step.BindJoins[0]
	colIdx := schema.Index(bp.Column)
	if colIdx < 0 {
		return nil, fmt.Errorf("planner: bind column %s missing from %s schema", bp.Column, step.Relation)
	}
	var queries []wrapper.SourceQuery
	var groups [][]relalg.Value
	for start := 0; start < len(combos); start += batch {
		end := start + batch
		if end > len(combos) {
			end = len(combos)
		}
		vals := make([]relalg.Value, 0, end-start)
		for _, c := range combos[start:end] {
			vals = append(vals, c[0])
		}
		filters := append([]wrapper.Filter(nil), step.Pushed...)
		if len(vals) == 1 {
			filters = append(filters, wrapper.Filter{Column: bp.Column, Op: "=", Value: vals[0]})
		} else {
			filters = append(filters, wrapper.Filter{Column: bp.Column, Op: wrapper.OpIn, Values: vals})
		}
		queries = append(queries, wrapper.SourceQuery{Relation: step.Relation, Filters: filters})
		groups = append(groups, vals)
	}
	parts, err := e.fetchAll(ctx, sess, w, queries)
	if err != nil {
		return nil, err
	}
	out := make([]*relalg.Relation, 0, len(combos))
	enc := relalg.NewKeyEncoder(nil)
	idx := map[string]int{}
	var buckets [][]relalg.Tuple
	for qi, part := range parts {
		vals := groups[qi]
		if len(vals) == 1 {
			out = append(out, part)
			continue
		}
		// Regroup through an interned index: the per-row map probe reuses
		// the encoder's scratch key, so only distinct feeder values (the
		// map inserts) allocate.
		clear(idx)
		buckets = buckets[:0]
		for _, t := range part.Tuples {
			k := enc.ValueKey(t[colIdx])
			bi, ok := idx[string(k)]
			if !ok {
				bi = len(buckets)
				idx[string(k)] = bi
				buckets = append(buckets, nil)
			}
			buckets[bi] = append(buckets[bi], t)
		}
		for _, v := range vals {
			var rows []relalg.Tuple
			if bi, ok := idx[string(enc.ValueKey(v))]; ok {
				rows = buckets[bi]
			}
			out = append(out, &relalg.Relation{Name: part.Name, Schema: part.Schema, Tuples: rows})
		}
	}
	return out, nil
}

func colRefFromQualified(q string) *sqlparse.ColRef {
	for i := 0; i < len(q); i++ {
		if q[i] == '.' {
			return &sqlparse.ColRef{Table: q[:i], Column: q[i+1:]}
		}
	}
	return &sqlparse.ColRef{Column: q}
}

// projectItems expands the SELECT list against the joined schema.
func projectItems(items []sqlparse.SelectItem, schema relalg.Schema) ([]relalg.ProjectItem, error) {
	var out []relalg.ProjectItem
	used := map[string]bool{}
	name := func(base string) string {
		if !used[base] {
			used[base] = true
			return base
		}
		for i := 2; ; i++ {
			cand := base + "_" + strconv.Itoa(i)
			if !used[cand] {
				used[cand] = true
				return cand
			}
		}
	}
	for i, it := range items {
		if it.Star {
			for _, col := range schema.Columns {
				if it.StarTable != "" && !hasPrefix(col.Name, it.StarTable+".") {
					continue
				}
				out = append(out, relalg.ProjectItem{
					Name: name(plainName(col.Name)),
					Expr: colRefFromQualified(col.Name),
				})
			}
			continue
		}
		n := it.Alias
		if n == "" {
			if c, ok := it.Expr.(*sqlparse.ColRef); ok {
				n = c.Column
			} else {
				n = "col" + strconv.Itoa(i+1)
			}
		}
		out = append(out, relalg.ProjectItem{Name: name(n), Expr: it.Expr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("planner: empty projection")
	}
	return out, nil
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func plainName(qualified string) string {
	for i := len(qualified) - 1; i >= 0; i-- {
		if qualified[i] == '.' {
			return qualified[i+1:]
		}
	}
	return qualified
}

func hasAggregates(sel *sqlparse.Select) bool {
	if len(sel.GroupBy) > 0 {
		return true
	}
	for _, it := range sel.Items {
		if !it.Star && relalg.IsAggregate(it.Expr) {
			return true
		}
	}
	if sel.Having != nil {
		return true
	}
	return false
}

// ExecuteMediation runs a mediated query under a background, ungoverned
// session: every branch, combined with the mediation's union semantics,
// then the post-union step when present.
func (e *Executor) ExecuteMediation(med *core.Mediation) (*relalg.Relation, error) {
	return e.ExecuteMediationSession(nil, med)
}

// ExecuteMediationCtx runs a mediated query under ctx.
func (e *Executor) ExecuteMediationCtx(ctx context.Context, med *core.Mediation) (*relalg.Relation, error) {
	sess := e.NewSession(ctx, Limits{})
	defer sess.Close()
	return e.ExecuteMediationSession(sess, med)
}

// ExecuteMediationSession runs a mediated query under an existing
// session. With Executor.Parallel set, branches run concurrently (they
// are independent by construction: each is one conflict-resolution case)
// and share the session; otherwise the union consumes them lazily in
// order. See MediationStream for the streaming composition.
func (e *Executor) ExecuteMediationSession(sess *Session, med *core.Mediation) (*relalg.Relation, error) {
	it, err := e.MediationStream(sess, med)
	if err != nil {
		return nil, err
	}
	return relalg.Collect(sess.Context(), it, "")
}

func anyAggItems(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if !it.Star && relalg.IsAggregate(it.Expr) {
			return true
		}
	}
	return false
}
