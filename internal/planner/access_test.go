package planner

// Tests for the source access layer: bind-join batching (⌈N/BatchSize⌉
// IN-list queries, answers identical to per-value probing), NULL-feeder
// skipping, the session result cache with single-flight deduplication,
// dispatcher admission bounds, branch-scoped cancellation of parallel
// mediation, and the LIMIT 0 short-circuit. The package's race-detector
// run (make test-race) covers the concurrent paths.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/sqlparse"
	"repro/internal/store"
	"repro/internal/wrapper"
	"repro/internal/wrapper/wrappertest"
)

// bindQ joins a local feeder relation against a required-binding target:
// the planner must feed tgt.k from feed.k through a bind join.
const bindQ = "SELECT feed.k, tgt.v FROM feed, tgt WHERE tgt.k = feed.k"

// buildBindCatalog wires a feeder source and an IN-capable target source
// whose relation tgt(k,v) requires k bound (a form-like relational
// endpoint), instrumented with a Counter.
func buildBindCatalog(t *testing.T, feedKeys []relalg.Value, targetRows [][2]relalg.Value, batchSize int, index bool) (*Catalog, *wrappertest.Counter) {
	t.Helper()
	fdb := store.NewDB("feedsrc")
	ftab := fdb.MustCreateTable("feed", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString}))
	for _, k := range feedKeys {
		ftab.MustInsert(k)
	}
	tdb := store.NewDB("bindsrc")
	ttab := tdb.MustCreateTable("tgt", relalg.NewSchema(
		relalg.Column{Name: "k", Type: relalg.KindString},
		relalg.Column{Name: "v", Type: relalg.KindNumber}))
	for _, r := range targetRows {
		ttab.MustInsert(r[0], r[1])
	}
	if index {
		if err := ttab.CreateIndex("k"); err != nil {
			t.Fatal(err)
		}
	}
	rw := wrapper.NewRelational(tdb)
	rw.BatchSize = batchSize
	rw.Require = map[string][]string{"tgt": {"k"}}
	ctr := wrappertest.NewCounter(rw)
	cat := NewCatalog()
	cat.MustAddSource(wrapper.NewRelational(fdb))
	cat.MustAddSource(ctr)
	return cat, ctr
}

// keysOf builds n distinct string keys k00..k<n-1>.
func keysOf(n int) []relalg.Value {
	out := make([]relalg.Value, n)
	for i := range out {
		out[i] = relalg.StrV(fmt.Sprintf("k%02d", i))
	}
	return out
}

// targetFor builds rows for every key, m rows each, interleaved by key so
// a batched scan returns them in non-grouped order (exercising the
// engine's regrouping).
func targetFor(keys []relalg.Value, m int) [][2]relalg.Value {
	var rows [][2]relalg.Value
	for j := 0; j < m; j++ {
		for i, k := range keys {
			rows = append(rows, [2]relalg.Value{k, relalg.NumV(float64(100*j + i))})
		}
	}
	return rows
}

// TestBindJoinBatchesProbes is the acceptance criterion of the tentpole:
// a bind join over N distinct feeder values against an IN-capable source
// issues exactly ⌈N/BatchSize⌉ source queries, and the answer — tuples
// and order — is identical to the unbatched per-value path.
func TestBindJoinBatchesProbes(t *testing.T) {
	const n, batch = 10, 4
	keys := keysOf(n)
	feed := append(append([]relalg.Value(nil), keys...), keys[0], keys[3]) // duplicates dedup away
	rows := targetFor(keys, 3)

	cat, ctr := buildBindCatalog(t, feed, rows, batch, false)
	ex := NewExecutor(cat)
	batched, err := ex.ExecuteCtx(context.Background(), sqlparse.MustParse(bindQ))
	if err != nil {
		t.Fatal(err)
	}
	want := (n + batch - 1) / batch
	if got := ctr.Queries(); got != want {
		t.Errorf("batched bind join issued %d source queries, want ⌈%d/%d⌉ = %d", got, n, batch, want)
	}

	cat2, ctr2 := buildBindCatalog(t, feed, rows, batch, false)
	ex2 := NewExecutor(cat2)
	ex2.DisableBatching = true
	unbatched, err := ex2.ExecuteCtx(context.Background(), sqlparse.MustParse(bindQ))
	if err != nil {
		t.Fatal(err)
	}
	if got := ctr2.Queries(); got != n {
		t.Errorf("unbatched bind join issued %d source queries, want %d", got, n)
	}
	if batched.String() != unbatched.String() {
		t.Errorf("batched answer differs from unbatched:\n%s\nvs\n%s", batched, unbatched)
	}
	if want := len(feed) * 3; batched.Len() != want {
		t.Errorf("answer has %d rows, want %d (every feeder row × 3 target rows)", batched.Len(), want)
	}
}

// TestBindJoinSkipsNullFeeders pins the NULL-probe bugfix: feeder rows
// with NULL keys produce no `k = NULL` source query (which could never
// join under SQL semantics), and the answer is unaffected.
func TestBindJoinSkipsNullFeeders(t *testing.T) {
	keys := keysOf(3)
	feed := []relalg.Value{keys[0], relalg.Null, keys[1], relalg.Null, keys[2]}
	rows := targetFor(keys, 1)
	for _, batch := range []int{1, 2} {
		cat, ctr := buildBindCatalog(t, feed, rows, batch, false)
		ex := NewExecutor(cat)
		if batch == 1 {
			ex.DisableBatching = true
		}
		res, err := ex.ExecuteCtx(context.Background(), sqlparse.MustParse(bindQ))
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 3 {
			t.Errorf("batch=%d: answer has %d rows, want 3:\n%s", batch, res.Len(), res)
		}
		for _, q := range ctr.Log() {
			for _, f := range q.Filters {
				if f.Op == "=" && f.Value.IsNull() {
					t.Errorf("batch=%d: NULL equality probe reached the source: %+v", batch, q)
				}
				for _, v := range f.Values {
					if v.IsNull() {
						t.Errorf("batch=%d: NULL inside IN list reached the source: %+v", batch, q)
					}
				}
			}
		}
		want := 3
		if batch == 2 {
			want = 2 // ⌈3/2⌉
		}
		if got := ctr.Queries(); got != want {
			t.Errorf("batch=%d: %d source queries, want %d (NULLs must not probe)", batch, got, want)
		}
	}
}

// TestProbeCacheDeduplicatesAcrossBranches: two mediation branches with
// identical bind probes hit the target source once; the repeats are
// served from the session result cache and counted as cache hits, not
// source queries.
func TestProbeCacheDeduplicatesAcrossBranches(t *testing.T) {
	const n, batch = 6, 3
	keys := keysOf(n)
	rows := targetFor(keys, 2)
	cat, ctr := buildBindCatalog(t, keys, rows, batch, false)
	med := &core.Mediation{
		Branches: []*sqlparse.Select{
			sqlparse.MustParse(bindQ).(*sqlparse.Select),
			sqlparse.MustParse(bindQ).(*sqlparse.Select),
		},
		UnionAll: true,
	}
	ex := NewExecutor(cat)
	res, err := ex.ExecuteMediationCtx(context.Background(), med)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2*n*2 {
		t.Errorf("answer has %d rows, want %d", res.Len(), 2*n*2)
	}
	want := (n + batch - 1) / batch
	if got := ctr.Queries(); got != want {
		t.Errorf("target reached %d times, want %d (branch 2 must hit the cache)", got, want)
	}
	if d := ctr.MaxDuplicates(); d != 1 {
		t.Errorf("an identical probe reached the source %d times, want 1", d)
	}
	if st := ex.Stats(); st.CacheHits != want {
		t.Errorf("CacheHits = %d, want %d", st.CacheHits, want)
	}
}

// TestProbeCacheSingleFlightUnderParallel: with parallel branches and a
// slow target, concurrent identical probes are joined in flight — the
// source still sees each canonical query exactly once.
func TestProbeCacheSingleFlightUnderParallel(t *testing.T) {
	const n, batch = 8, 2
	keys := keysOf(n)
	rows := targetFor(keys, 1)
	cat, ctr := buildBindCatalog(t, keys, rows, batch, false)
	ctr.Delay = 2 * time.Millisecond
	med := &core.Mediation{
		Branches: []*sqlparse.Select{
			sqlparse.MustParse(bindQ).(*sqlparse.Select),
			sqlparse.MustParse(bindQ).(*sqlparse.Select),
			sqlparse.MustParse(bindQ).(*sqlparse.Select),
		},
		UnionAll: true,
	}
	ex := NewExecutor(cat)
	ex.Parallel = true
	res, err := ex.ExecuteMediationCtx(context.Background(), med)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3*n {
		t.Errorf("answer has %d rows, want %d", res.Len(), 3*n)
	}
	if d := ctr.MaxDuplicates(); d != 1 {
		t.Errorf("single-flight failed: an identical probe reached the source %d times", d)
	}
	if got, want := ctr.Queries(), (n+batch-1)/batch; got != want {
		t.Errorf("target reached %d times, want %d", got, want)
	}
}

// TestDispatcherBoundsInflight: the per-source dispatcher admits at most
// Cost.MaxConcurrent probes at once, and a session's
// MaxConcurrentPerSource lowers the ceiling further.
func TestDispatcherBoundsInflight(t *testing.T) {
	const n = 12
	keys := keysOf(n)
	rows := targetFor(keys, 1)

	build := func() (*Executor, *wrappertest.Counter) {
		cat, ctr := buildBindCatalog(t, keys, rows, 1, false)
		ctr.Delay = 2 * time.Millisecond
		ctr.Wrapper.(*wrapper.Relational).CostParams = wrapper.Cost{PerQuery: 10, PerTuple: 0.1, MaxConcurrent: 2}
		ex := NewExecutor(cat)
		ex.DisableBatching = true
		return ex, ctr
	}

	ex, ctr := build()
	if _, err := ex.ExecuteCtx(context.Background(), sqlparse.MustParse(bindQ)); err != nil {
		t.Fatal(err)
	}
	if got := ctr.MaxInflight(); got > 2 {
		t.Errorf("max in-flight queries = %d, want <= Cost.MaxConcurrent = 2", got)
	} else if got < 2 {
		t.Errorf("max in-flight queries = %d; probes did not overlap at all", got)
	}

	ex2, ctr2 := build()
	sess := ex2.NewSession(context.Background(), Limits{MaxConcurrentPerSource: 1})
	defer sess.Close()
	if _, err := ex2.ExecuteSession(sess, sqlparse.MustParse(bindQ)); err != nil {
		t.Fatal(err)
	}
	if got := ctr2.MaxInflight(); got != 1 {
		t.Errorf("max in-flight with session cap 1 = %d, want 1", got)
	}
}

// failingWrapper fails every fetch; it overrides the embedded Streamer
// too so streamed scans fail identically.
type failingWrapper struct {
	wrapper.Wrapper
}

var errInjected = errors.New("injected source failure")

func (f *failingWrapper) Query(context.Context, wrapper.SourceQuery) (*relalg.Relation, error) {
	return nil, errInjected
}

func (f *failingWrapper) QueryStream(context.Context, wrapper.SourceQuery) (wrapper.TupleStream, error) {
	return nil, errInjected
}

// TestParallelBranchFailureCancelsSiblings pins the branch-scoped
// cancellation bugfix: when one parallel mediation branch fails, its
// siblings stop fetching from their sources promptly instead of running
// to completion. The sibling here is frozen mid-transfer behind a Gate
// that only the branch context's death can release — before the fix this
// test hung until timeout.
func TestParallelBranchFailureCancelsSiblings(t *testing.T) {
	bad := store.NewDB("badsrc")
	bad.MustCreateTable("bad", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber}))
	slow := store.NewDB("slowsrc")
	stab := slow.MustCreateTable("nums", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber}))
	for i := 0; i < 1000; i++ {
		stab.MustInsert(relalg.NumV(float64(i)))
	}
	gw := wrappertest.NewGate(wrapper.NewRelational(slow))
	cat := NewCatalog()
	cat.MustAddSource(&failingWrapper{Wrapper: wrapper.NewRelational(bad)})
	cat.MustAddSource(gw)

	med := &core.Mediation{
		Branches: []*sqlparse.Select{
			sqlparse.MustParse("SELECT nums.n FROM nums").(*sqlparse.Select),
			sqlparse.MustParse("SELECT bad.n FROM bad").(*sqlparse.Select),
		},
		UnionAll: true,
	}
	ex := NewExecutor(cat)
	ex.Parallel = true
	errc := make(chan error, 1)
	go func() {
		_, err := ex.ExecuteMediationCtx(context.Background(), med)
		errc <- err
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, errInjected) {
			t.Fatalf("mediation error = %v, want the injected branch failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failing branch did not cancel its gated sibling; parallel mediation hung")
	}
}

// TestLimitZeroTransfersNothing pins the LIMIT 0 short-circuit: the scan
// leaf is never opened, so zero source queries run and zero tuples move.
func TestLimitZeroTransfersNothing(t *testing.T) {
	ex := NewExecutor(bigCatalog(1000))
	res, err := ex.Execute(sqlparse.MustParse("SELECT nums.n FROM nums LIMIT 0"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", res.Len())
	}
	if st := ex.Stats(); st.SourceQueries != 0 || st.TuplesTransferred != 0 {
		t.Errorf("LIMIT 0 still touched the source: %+v", st)
	}
}

// TestBatchedEquivalenceRandomized fuzzes the batched path against the
// per-value path over randomized fixtures: random feeder bags (with
// duplicates and NULLs), random target tables (unmatched keys, duplicate
// rows per key), random batch widths, indexed and not. Answers must be
// identical tuple for tuple, in order.
func TestBatchedEquivalenceRandomized(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pool := keysOf(3 + rng.Intn(12))
		var feed []relalg.Value
		for i := 0; i < 2+rng.Intn(30); i++ {
			if rng.Intn(8) == 0 {
				feed = append(feed, relalg.Null)
			} else {
				feed = append(feed, pool[rng.Intn(len(pool))])
			}
		}
		var rows [][2]relalg.Value
		for i := 0; i < rng.Intn(60); i++ {
			// Indexes past the pool are keys the feeder never mentions.
			k := fmt.Sprintf("k%02d", rng.Intn(len(pool)+3))
			rows = append(rows, [2]relalg.Value{relalg.StrV(k), relalg.NumV(float64(rng.Intn(10)))})
		}
		batch := 1 + rng.Intn(5)
		index := rng.Intn(2) == 0

		cat, _ := buildBindCatalog(t, feed, rows, batch, index)
		a, err := NewExecutor(cat).ExecuteCtx(context.Background(), sqlparse.MustParse(bindQ))
		if err != nil {
			t.Fatalf("seed %d: batched: %v", seed, err)
		}
		cat2, _ := buildBindCatalog(t, feed, rows, batch, index)
		ex2 := NewExecutor(cat2)
		ex2.DisableBatching = true
		b, err := ex2.ExecuteCtx(context.Background(), sqlparse.MustParse(bindQ))
		if err != nil {
			t.Fatalf("seed %d: unbatched: %v", seed, err)
		}
		if a.String() != b.String() {
			t.Errorf("seed %d (batch=%d index=%v): batched differs from unbatched:\n%s\nvs\n%s",
				seed, batch, index, a, b)
		}
	}
}

// TestExplainShowsBatchWidth: the plan explains its batching decision.
func TestExplainShowsBatchWidth(t *testing.T) {
	cat, _ := buildBindCatalog(t, keysOf(4), targetFor(keysOf(4), 1), 7, false)
	ex := NewExecutor(cat)
	plan, err := ex.Plan(sqlparse.MustParse(bindQ).(*sqlparse.Select))
	if err != nil {
		t.Fatal(err)
	}
	if exp := plan.Explain(); !strings.Contains(exp, "batch[7]") {
		t.Errorf("explain lacks batch width:\n%s", exp)
	}
}

// TestUnionArmsShareAdmissionSlot: a mediation branch stopped by its own
// LIMIT before stream exhaustion must release its admission slot when
// the union advances past it — with a per-source cap of 1, the next
// branch over the same source would otherwise wait forever for the slot
// the drained branch still held.
func TestUnionArmsShareAdmissionSlot(t *testing.T) {
	cat := bigCatalog(100)
	med := &core.Mediation{
		Branches: []*sqlparse.Select{
			sqlparse.MustParse("SELECT nums.n FROM nums LIMIT 1").(*sqlparse.Select),
			sqlparse.MustParse("SELECT nums.n FROM nums LIMIT 2").(*sqlparse.Select),
		},
		UnionAll: true,
	}
	ex := NewExecutor(cat)
	sess := ex.NewSession(context.Background(), Limits{MaxConcurrentPerSource: 1})
	defer sess.Close()
	done := make(chan error, 1)
	go func() {
		res, err := ex.ExecuteMediationSession(sess, med)
		if err == nil && res.Len() != 3 {
			err = fmt.Errorf("rows = %d, want 3", res.Len())
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("union arms deadlocked on the per-source admission slot")
	}
}

// TestFirstRealErrorPrefersNonContext is the regression test for the
// sibling-echo bug: a branch killed by the shared deadline (or the
// branch-scoped cancel) reports a context error, and that echo must not
// mask the sibling failure that actually caused it — for deadlines just
// as for cancellation.
func TestFirstRealErrorPrefersNonContext(t *testing.T) {
	boom := errors.New("boom")
	cases := []struct {
		name string
		errs []error
		want error
	}{
		{"cause after canceled echo", []error{context.Canceled, boom}, boom},
		{"cause after deadline echo", []error{context.DeadlineExceeded, boom}, boom},
		{"cause after wrapped deadline", []error{fmt.Errorf("branch: %w", context.DeadlineExceeded), boom}, boom},
		{"all context: first wins", []error{context.Canceled, context.DeadlineExceeded}, context.Canceled},
		{"nil holes skipped", []error{nil, boom, nil}, boom},
		{"all nil", []error{nil, nil}, nil},
	}
	for _, tc := range cases {
		if got := firstRealError(tc.errs); !errors.Is(got, tc.want) {
			t.Errorf("%s: firstRealError = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestChaosSlotAccountingUnderFailure: every failure path of the access
// layer — materialized probe, stream open, bind-join probe — must hand
// its dispatcher slot back. A leak here is invisible to a single query
// and deadly to the next one.
func TestChaosSlotAccountingUnderFailure(t *testing.T) {
	// Failing scan stream.
	bad := store.NewDB("badsrc")
	bad.MustCreateTable("bad", relalg.NewSchema(
		relalg.Column{Name: "n", Type: relalg.KindNumber}))
	cat := NewCatalog()
	cat.MustAddSource(&failingWrapper{Wrapper: wrapper.NewRelational(bad)})
	ex := NewExecutor(cat)
	if _, err := ex.ExecuteCtx(context.Background(),
		sqlparse.MustParse("SELECT bad.n FROM bad")); !errors.Is(err, errInjected) {
		t.Fatalf("scan err = %v", err)
	}
	assertNoLeakedSlots(t, ex)

	// Failing bind-join probe: the feeder succeeds, the target fails.
	keys := keysOf(4)
	cat2, _ := buildBindCatalog(t, keys, targetFor(keys, 1), 0, false)
	w, err := cat2.WrapperFor("tgt")
	if err != nil {
		t.Fatal(err)
	}
	cat3 := NewCatalog()
	cat3.MustAddSource(&failingWrapper{Wrapper: w})
	feed, err := cat2.WrapperFor("feed")
	if err != nil {
		t.Fatal(err)
	}
	cat3.MustAddSource(feed)
	ex = NewExecutor(cat3)
	if _, err := ex.ExecuteCtx(context.Background(),
		sqlparse.MustParse(bindQ)); !errors.Is(err, errInjected) {
		t.Fatalf("bind-join err = %v", err)
	}
	assertNoLeakedSlots(t, ex)

	// The same shape with retries on: the retry loop re-acquires per
	// attempt and must not leak across attempts either. errInjected is
	// unclassified, hence not retryable — wrap the target in a Flaky
	// scripting transient faults instead.
	fl := wrappertest.NewFlaky(w)
	fl.FailAlways(wrapper.Transient(errors.New("down")))
	cat4 := NewCatalog()
	cat4.MustAddSource(fl)
	cat4.MustAddSource(feed)
	ex = NewExecutor(cat4)
	ex.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}
	if _, err := ex.ExecuteCtx(context.Background(), sqlparse.MustParse(bindQ)); err == nil {
		t.Fatal("bind-join against dead source succeeded")
	}
	assertNoLeakedSlots(t, ex)
}
