package planner

// This file prices source accesses for the plan enumerators. The pricing
// rules live in a costModel over a Stats interface: with no statistics
// the model falls back to the wrappers' static EstimateRows guesses and
// fixed selectivity constants (exactly the pre-optimizer behavior), and
// every learned fact — observed cardinalities per (relation, canonical
// filter signature), per-source query latencies, distinct counts from
// Statser-capable wrappers — sharpens an estimate without changing the
// formula. The executor's adaptive StatsStore (stats.go) is the one
// Stats implementation; tests may plug their own.

import (
	"context"
	"math"
	"time"

	"repro/internal/wrapper"
)

// Selectivity guesses used by the cost model when no statistics apply.
const (
	selEq    = 0.1
	selRange = 0.4
	selNeq   = 0.9
	selJoin  = 0.1
)

// Stats is what the cost model consults before falling back to static
// guesses. All methods return ok=false when nothing has been learned.
type Stats interface {
	// AccessRows returns the learned tuple count of one source access:
	// the rows a query against relation with the given filters (plus one
	// equality per bind column, values unknown at plan time) transfers.
	// For bind-join accesses the answer is per probe.
	AccessRows(relation string, filters []wrapper.Filter, bindCols []string) (float64, bool)
	// RelationRows returns the learned unfiltered cardinality.
	RelationRows(relation string) (float64, bool)
	// SourceLatency returns the mean observed per-query latency of a
	// source.
	SourceLatency(source string) (time.Duration, bool)
}

// costModel prices candidate plan steps. One model is built per Plan
// call; it snapshots nothing (Stats implementations are concurrency-safe)
// but caches Statser distinct counts for the duration of the enumeration.
type costModel struct {
	ctx      context.Context // bounds wrapper stat probes for the enumeration
	stats    Stats           // nil: static estimates only
	distinct map[string]int  // "binding.col" -> distinct count; -1 unknown
	hook     func(source string, perQuery float64) float64
}

// costModelFor builds the executor's cost model: backed by the adaptive
// statistics store when the executor has one. ctx bounds any live stat
// probes the wrappers cost (EstimateRows / DistinctCount) — it is the
// planning session's context, so canceling the session stops its probes.
func (e *Executor) costModelFor(ctx context.Context) *costModel {
	cm := &costModel{ctx: ctx, distinct: map[string]int{}, hook: e.PerQueryCostHook}
	if e.AdaptiveStats != nil {
		cm.stats = e.AdaptiveStats
	}
	return cm
}

// accessRows estimates the tuples one source query against b transfers
// (per probe, for bind accesses). Preference order: learned cardinality
// for the exact access signature, learned cardinality for the filter
// shape, then the static path — learned (or guessed) base cardinality
// scaled by fixed per-filter selectivities.
func (cm *costModel) accessRows(b *relBinding, pushed []wrapper.Filter, bindCols []string) float64 {
	if cm.stats != nil {
		if rows, ok := cm.stats.AccessRows(b.relation, pushed, bindCols); ok {
			return math.Max(rows, 0)
		}
	}
	base := float64(b.w.EstimateRows(cm.ctx, b.relation))
	if cm.stats != nil {
		if rows, ok := cm.stats.RelationRows(b.relation); ok {
			base = rows
		}
	}
	rows := base
	for _, f := range pushed {
		switch f.Op {
		case "=":
			rows *= selEq
		case "<>":
			rows *= selNeq
		default:
			rows *= selRange
		}
	}
	for range bindCols {
		rows *= selEq
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// distinctOf returns the distinct count of a binding's column via the
// wrapper's optional Statser extension, -1 when unknown. Answers are
// cached for the enumeration.
func (cm *costModel) distinctOf(b *relBinding, col string) int {
	key := b.name + "." + col
	if n, ok := cm.distinct[key]; ok {
		return n
	}
	n := -1
	if st, ok := b.w.(wrapper.Statser); ok {
		if d, ok := st.DistinctCount(cm.ctx, b.relation, col); ok && d > 0 {
			n = d
		}
	}
	cm.distinct[key] = n
	return n
}

// joinSelectivity estimates the selectivity of one equi-join key between
// a placed binding's column and the new binding's column: 1/max(distinct)
// when either side exposes statistics, the fixed selJoin guess otherwise.
func (cm *costModel) joinSelectivity(cur *relBinding, curCol string, next *relBinding, nextCol string) float64 {
	d := -1
	if cur != nil {
		d = cm.distinctOf(cur, curCol)
	}
	if n := cm.distinctOf(next, nextCol); n > d {
		d = n
	}
	if d > 0 {
		return 1 / float64(d)
	}
	return selJoin
}

// perQueryCost prices one query against b's source: the source's declared
// fixed overhead, floored by the observed mean latency (in milliseconds —
// the abstract cost units are calibrated so one unit is roughly a
// millisecond of communication) once executions have measured it.
func (cm *costModel) perQueryCost(b *relBinding) float64 {
	pq := b.w.Cost().PerQuery
	if cm.stats != nil {
		if lat, ok := cm.stats.SourceLatency(b.w.Source()); ok {
			if ms := float64(lat) / float64(time.Millisecond); ms > pq {
				pq = ms
			}
		}
	}
	if cm.hook != nil {
		pq = cm.hook(b.w.Source(), pq)
	}
	return pq
}
