package sqlparse

import "testing"

func BenchmarkParseQ1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(paperQ1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseMediated(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(paperMediated); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrintMediated(b *testing.B) {
	stmt := MustParse(paperMediated)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Pretty(stmt)
	}
}
