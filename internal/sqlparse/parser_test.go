package sqlparse

import (
	"strings"
	"testing"
)

// The paper's query Q1, verbatim modulo whitespace.
const paperQ1 = `
SELECT rl.cname, rl.revenue FROM rl, r2
WHERE rl.cname = r2.cname
AND rl.revenue > r2.expenses;`

func TestParsePaperQ1(t *testing.T) {
	stmt, err := Parse(paperQ1)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("got %T, want *Select", stmt)
	}
	if len(sel.Items) != 2 {
		t.Errorf("items = %d, want 2", len(sel.Items))
	}
	if len(sel.From) != 2 || sel.From[0].Table != "rl" || sel.From[1].Table != "r2" {
		t.Errorf("from = %+v", sel.From)
	}
	preds := Conjuncts(sel.Where)
	if len(preds) != 2 {
		t.Fatalf("conjuncts = %d, want 2", len(preds))
	}
	cmp := preds[1].(*BinaryExpr)
	if cmp.Op != ">" {
		t.Errorf("second predicate op = %q, want >", cmp.Op)
	}
}

// The paper's mediated query: a 3-branch UNION with arithmetic over the
// ancillary rate source.
const paperMediated = `
SELECT rl.cname, rl.revenue
FROM rl, r2
WHERE rl.currency = 'USD'
AND rl.cname = r2.cname
AND rl.revenue > r2.expenses
UNION
SELECT rl.cname, rl.revenue * 1000 * r3.rate
FROM rl, r2, r3
WHERE rl.currency = 'JPY'
AND rl.cname = r2.cname
AND r3.fromCur = rl.currency
AND r3.toCur = 'USD'
AND rl.revenue * 1000 * r3.rate > r2.expenses
UNION
SELECT rl.cname, rl.revenue * r3.rate
FROM rl, r2, r3
WHERE rl.currency <> 'USD'
AND rl.currency <> 'JPY'
AND r3.fromCur = rl.currency
AND r3.toCur = 'USD'
AND rl.cname = r2.cname
AND rl.revenue * r3.rate > r2.expenses;`

func TestParsePaperMediatedQuery(t *testing.T) {
	stmt, err := Parse(paperMediated)
	if err != nil {
		t.Fatal(err)
	}
	sels := Selects(stmt)
	if len(sels) != 3 {
		t.Fatalf("branches = %d, want 3", len(sels))
	}
	// Second branch projects rl.revenue * 1000 * r3.rate.
	proj := sels[1].Items[1].Expr.(*BinaryExpr)
	if proj.Op != "*" {
		t.Errorf("branch 2 projection = %s", proj)
	}
	if proj.String() != "rl.revenue * 1000 * r3.rate" {
		t.Errorf("branch 2 projection = %q", proj.String())
	}
	// Third branch has two disequalities.
	neqs := 0
	for _, p := range Conjuncts(sels[2].Where) {
		if b, ok := p.(*BinaryExpr); ok && b.Op == "<>" {
			neqs++
		}
	}
	if neqs != 2 {
		t.Errorf("branch 3 disequalities = %d, want 2", neqs)
	}
}

func TestParseClauses(t *testing.T) {
	stmt := MustParse(`
		SELECT DISTINCT c.name AS n, SUM(c.rev) total
		FROM companies c, markets AS m
		WHERE (c.mkt = m.id AND m.region = 'EU') OR c.global = TRUE
		GROUP BY c.name
		HAVING SUM(c.rev) > 100
		ORDER BY total DESC, n
		LIMIT 10`)
	sel := stmt.(*Select)
	if !sel.Distinct {
		t.Error("DISTINCT lost")
	}
	if sel.Items[0].Alias != "n" || sel.Items[1].Alias != "total" {
		t.Errorf("aliases = %+v", sel.Items)
	}
	if sel.From[0].Binding() != "c" || sel.From[1].Binding() != "m" {
		t.Errorf("bindings = %v, %v", sel.From[0].Binding(), sel.From[1].Binding())
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("GROUP BY/HAVING lost")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseStar(t *testing.T) {
	sel := MustParse("SELECT * FROM r1").(*Select)
	if !sel.Items[0].Star || sel.Items[0].StarTable != "" {
		t.Errorf("items = %+v", sel.Items)
	}
	sel = MustParse("SELECT r1.* , r2.x FROM r1, r2").(*Select)
	if !sel.Items[0].Star || sel.Items[0].StarTable != "r1" {
		t.Errorf("items = %+v", sel.Items)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := MustParse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").(*Select)
	or := sel.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top op = %q, want OR", or.Op)
	}
	and := or.R.(*BinaryExpr)
	if and.Op != "AND" {
		t.Errorf("right op = %q, want AND", and.Op)
	}

	sel = MustParse("SELECT a + b * c FROM t").(*Select)
	add := sel.Items[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top arith = %q, want +", add.Op)
	}
	if mul := add.R.(*BinaryExpr); mul.Op != "*" {
		t.Errorf("nested arith = %q, want *", mul.Op)
	}
}

func TestParseNotAndIsNull(t *testing.T) {
	sel := MustParse("SELECT a FROM t WHERE NOT a = 1 AND b IS NOT NULL AND c IS NULL").(*Select)
	preds := Conjuncts(sel.Where)
	if len(preds) != 3 {
		t.Fatalf("conjuncts = %d", len(preds))
	}
	if _, ok := preds[0].(*UnaryExpr); !ok {
		t.Errorf("pred 0 = %T, want NOT", preds[0])
	}
	if n, ok := preds[1].(*IsNull); !ok || !n.Not {
		t.Errorf("pred 1 = %#v, want IS NOT NULL", preds[1])
	}
	if n, ok := preds[2].(*IsNull); !ok || n.Not {
		t.Errorf("pred 2 = %#v, want IS NULL", preds[2])
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := MustParse("SELECT a FROM t WHERE n = 'O''Brien'").(*Select)
	cmp := sel.Where.(*BinaryExpr)
	if got := string(cmp.R.(StringLit)); got != "O'Brien" {
		t.Errorf("string = %q", got)
	}
}

func TestParseNegativeNumber(t *testing.T) {
	sel := MustParse("SELECT a FROM t WHERE x > -5.5").(*Select)
	cmp := sel.Where.(*BinaryExpr)
	if got := float64(cmp.R.(NumberLit)); got != -5.5 {
		t.Errorf("number = %v", got)
	}
}

func TestParseUnionAssociativity(t *testing.T) {
	stmt := MustParse("SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM v")
	u := stmt.(*Union)
	if !u.All {
		t.Error("outer union should be ALL")
	}
	if inner, ok := u.Left.(*Union); !ok || inner.All {
		t.Error("inner union should be plain UNION")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT 1.5",
		"SELECT a FROM t WHERE x = = 1",
		"SELECT a FROM t WHERE 'unterminated",
		"SELECT a FROM t trailing garbage (",
		"FROM t SELECT a",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCommentsSkipped(t *testing.T) {
	sel := MustParse("SELECT a -- projection\nFROM t -- the table\n").(*Select)
	if len(sel.Items) != 1 || sel.From[0].Table != "t" {
		t.Errorf("comment handling broke parse: %+v", sel)
	}
}

func TestStatementColumns(t *testing.T) {
	stmt := MustParse(paperMediated)
	cols := StatementColumns(stmt)
	want := map[string]bool{
		"rl.cname": true, "rl.revenue": true, "rl.currency": true,
		"r2.cname": true, "r2.expenses": true,
		"r3.rate": true, "r3.fromCur": true, "r3.toCur": true,
	}
	got := map[string]bool{}
	for _, c := range cols {
		got[c.String()] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing column %s in %v", k, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("columns = %v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT rl.cname, rl.revenue FROM rl, r2 WHERE rl.cname = r2.cname AND rl.revenue > r2.expenses",
		"SELECT rl.cname, rl.revenue * 1000 * r3.rate FROM rl, r2, r3 WHERE rl.currency = 'JPY'",
		"SELECT DISTINCT a.x AS y FROM a ORDER BY y DESC LIMIT 3",
		"SELECT COUNT(*) FROM t GROUP BY t.k HAVING COUNT(*) > 2",
		"SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3",
		"SELECT a FROM t UNION ALL SELECT b FROM u",
		"SELECT -x + 3 * (y - 2) FROM t",
		"SELECT a FROM t WHERE NOT (x = 1 OR x = 2)",
	}
	for _, src := range srcs {
		s1 := MustParse(src)
		text := s1.String()
		s2, err := Parse(text)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", text, err)
			continue
		}
		if s2.String() != text {
			t.Errorf("round trip unstable:\n  1: %s\n  2: %s", text, s2.String())
		}
	}
}

func TestPrettyLayout(t *testing.T) {
	stmt := MustParse(paperMediated)
	out := Pretty(stmt)
	if strings.Count(out, "UNION") != 2 {
		t.Errorf("Pretty lost UNIONs:\n%s", out)
	}
	if !strings.Contains(out, "\nWHERE rl.currency = 'JPY'") {
		t.Errorf("Pretty layout unexpected:\n%s", out)
	}
}

func TestCloneExprIndependence(t *testing.T) {
	e := MustParse("SELECT a FROM t WHERE x = 1 AND y > 2").(*Select).Where
	c := CloneExpr(e).(*BinaryExpr)
	c.L.(*BinaryExpr).Op = "<>"
	if e.(*BinaryExpr).L.(*BinaryExpr).Op != "=" {
		t.Error("CloneExpr shares nodes with original")
	}
}

func TestAndAllConjunctsInverse(t *testing.T) {
	preds := []Expr{
		Bin("=", Col("a", "x"), Num(1)),
		Bin(">", Col("a", "y"), Num(2)),
		Bin("<>", Col("b", "z"), Str("q")),
	}
	e := AndAll(preds)
	back := Conjuncts(e)
	if len(back) != 3 {
		t.Fatalf("Conjuncts(AndAll(3 preds)) = %d", len(back))
	}
	for i := range preds {
		if back[i].String() != preds[i].String() {
			t.Errorf("pred %d changed: %s vs %s", i, back[i], preds[i])
		}
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) != nil")
	}
}
