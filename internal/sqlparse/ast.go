// Package sqlparse provides the SQL front end of the COIN prototype: a
// lexer, an abstract syntax tree, a recursive-descent parser, and a
// printer. The mediator consumes and produces this AST; the multi-database
// access engine plans it; the printer regenerates the mediated SQL text the
// paper presents in Section 3.
//
// The supported dialect is the SELECT–PROJECT–JOIN–UNION core the paper's
// prototype exposed: SELECT [DISTINCT] items FROM tables WHERE expr
// [GROUP BY exprs [HAVING expr]] [ORDER BY items] [LIMIT n], combined with
// UNION / UNION ALL, with arithmetic, comparison and boolean expressions,
// and aggregate functions COUNT/SUM/AVG/MIN/MAX.
package sqlparse

import "fmt"

// Statement is a SQL statement: *Select or *Union.
type Statement interface {
	stmt()
	// String renders the statement in canonical SQL (single line).
	String() string
}

// Select is a single SELECT block.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// Union combines two statements; All keeps duplicates.
type Union struct {
	Left, Right Statement
	All         bool
}

func (*Select) stmt() {}
func (*Union) stmt()  {}

// SelectItem is one projection: either a star (optionally table-qualified)
// or an expression with an optional alias.
type SelectItem struct {
	Star      bool
	StarTable string // for t.*
	Expr      Expr
	Alias     string
}

// TableRef names a relation in the FROM clause, with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Binding returns the name by which columns reference this table: the
// alias when present, otherwise the table name.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a SQL scalar or boolean expression.
type Expr interface {
	expr()
	String() string
}

// ColRef references a column, optionally table-qualified.
type ColRef struct {
	Table  string // empty when unqualified
	Column string
}

// NumberLit is a numeric literal.
type NumberLit float64

// StringLit is a string literal.
type StringLit string

// BoolLit is TRUE or FALSE.
type BoolLit bool

// NullLit is the NULL literal.
type NullLit struct{}

// BinaryExpr applies a binary operator. Op is one of:
// OR AND = <> < > <= >= + - * /
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

// FuncCall is an aggregate or scalar function call. Star marks COUNT(*).
type FuncCall struct {
	Name string
	Star bool
	Args []Expr
}

// IsNull tests an expression against NULL (negated when Not is set).
type IsNull struct {
	X   Expr
	Not bool
}

func (*ColRef) expr()     {}
func (NumberLit) expr()   {}
func (StringLit) expr()   {}
func (BoolLit) expr()     {}
func (NullLit) expr()     {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*FuncCall) expr()   {}
func (*IsNull) expr()     {}

// Col builds a qualified column reference.
func Col(table, column string) *ColRef { return &ColRef{Table: table, Column: column} }

// Num builds a numeric literal.
func Num(v float64) NumberLit { return NumberLit(v) }

// Str builds a string literal.
func Str(s string) StringLit { return StringLit(s) }

// Bin builds a binary expression.
func Bin(op string, l, r Expr) *BinaryExpr { return &BinaryExpr{Op: op, L: l, R: r} }

// AndAll folds a slice of predicates with AND; nil for an empty slice.
func AndAll(preds []Expr) Expr {
	var out Expr
	for _, p := range preds {
		if out == nil {
			out = p
			continue
		}
		out = Bin("AND", out, p)
	}
	return out
}

// Conjuncts flattens nested ANDs into a slice of predicates.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// UnionAll folds statements into a chain of UNIONs (set semantics, as in
// the paper's mediated query).
func UnionAll(stmts []Statement) Statement {
	if len(stmts) == 0 {
		return nil
	}
	out := stmts[0]
	for _, s := range stmts[1:] {
		out = &Union{Left: out, Right: s}
	}
	return out
}

// Selects flattens a UNION tree into its SELECT branches, left to right.
func Selects(s Statement) []*Select {
	switch s := s.(type) {
	case *Select:
		return []*Select{s}
	case *Union:
		return append(Selects(s.Left), Selects(s.Right)...)
	}
	return nil
}

// WalkExprs calls fn for every expression node reachable from e,
// pre-order. fn returning false prunes the subtree.
func WalkExprs(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch e := e.(type) {
	case *BinaryExpr:
		WalkExprs(e.L, fn)
		WalkExprs(e.R, fn)
	case *UnaryExpr:
		WalkExprs(e.X, fn)
	case *FuncCall:
		for _, a := range e.Args {
			WalkExprs(a, fn)
		}
	case *IsNull:
		WalkExprs(e.X, fn)
	}
}

// ColumnsOf returns the distinct column references in e, in first-seen
// order.
func ColumnsOf(e Expr) []*ColRef {
	var out []*ColRef
	seen := map[string]bool{}
	WalkExprs(e, func(x Expr) bool {
		if c, ok := x.(*ColRef); ok {
			key := c.Table + "." + c.Column
			if !seen[key] {
				seen[key] = true
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// StatementColumns returns the distinct column references appearing
// anywhere in the statement.
func StatementColumns(s Statement) []*ColRef {
	var out []*ColRef
	seen := map[string]bool{}
	add := func(e Expr) {
		for _, c := range ColumnsOf(e) {
			key := c.Table + "." + c.Column
			if !seen[key] {
				seen[key] = true
				out = append(out, c)
			}
		}
	}
	for _, sel := range Selects(s) {
		for _, it := range sel.Items {
			if !it.Star {
				add(it.Expr)
			}
		}
		add(sel.Where)
		for _, g := range sel.GroupBy {
			add(g)
		}
		add(sel.Having)
		for _, o := range sel.OrderBy {
			add(o.Expr)
		}
	}
	return out
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *ColRef:
		c := *e
		return &c
	case NumberLit, StringLit, BoolLit, NullLit:
		return e
	case *BinaryExpr:
		return &BinaryExpr{Op: e.Op, L: CloneExpr(e.L), R: CloneExpr(e.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: CloneExpr(e.X)}
	case *FuncCall:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = CloneExpr(a)
		}
		return &FuncCall{Name: e.Name, Star: e.Star, Args: args}
	case *IsNull:
		return &IsNull{X: CloneExpr(e.X), Not: e.Not}
	default:
		panic(fmt.Sprintf("sqlparse: CloneExpr: unknown node %T", e))
	}
}
