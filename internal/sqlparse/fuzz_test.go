package sqlparse

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse checks the parser never panics and that accepted statements
// round-trip through the printer. Seeds mix hand-picked regressions with
// the golden regression corpus, so every query shape the harness pins is
// also a fuzzing starting point.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT rl.cname, rl.revenue FROM rl, r2 WHERE rl.cname = r2.cname AND rl.revenue > r2.expenses",
		"SELECT rl.revenue * 1000 * r3.rate FROM rl, r3 WHERE rl.currency = 'JPY'",
		"SELECT DISTINCT a.x AS y FROM a ORDER BY y DESC LIMIT 3",
		"SELECT COUNT(*) FROM t GROUP BY t.k HAVING COUNT(*) > 2",
		"SELECT a FROM t UNION ALL SELECT b FROM u",
		"SELECT a FROM t WHERE x IS NOT NULL OR NOT y = 'O''Brien'",
		"SELECT -x + 3 * (y - 2.5e3) FROM t -- comment",
		"SELECT * FROM",
		"((((",
		"SELECT 'unterminated",
		"SELECT \xe6()FROM A", // regression: stray multibyte byte must not lex as identifier
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// The golden corpus (directive comments included — the parser skips
	// `--` lines). Best-effort: absent when the package is built outside
	// the repo tree.
	if entries, err := os.ReadDir("../golden/testdata/queries"); err == nil {
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".sql" {
				continue
			}
			body, err := os.ReadFile(filepath.Join("../golden/testdata/queries", e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(body))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		text := stmt.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted %q but reprint %q does not parse: %v", src, text, err)
		}
		if back.String() != text {
			t.Fatalf("unstable round trip: %q -> %q", text, back.String())
		}
	})
}
