package sqlparse

import (
	"strconv"
	"strings"
)

// This file renders the AST back to SQL. Two forms are provided:
// String() produces a canonical single-line rendering (used for
// round-tripping and equality in tests), and Pretty() produces the
// multi-line layout the paper uses for the mediated query in Section 3.

func (s *Select) String() string { return s.render("", " ") }
func (u *Union) String() string {
	op := " UNION "
	if u.All {
		op = " UNION ALL "
	}
	return u.Left.String() + op + u.Right.String()
}

// Pretty renders a statement with clause-per-line layout and UNION
// separators on their own lines, mirroring the presentation in the paper.
func Pretty(s Statement) string {
	switch s := s.(type) {
	case *Select:
		return s.render("", "\n")
	case *Union:
		op := "UNION"
		if s.All {
			op = "UNION ALL"
		}
		return Pretty(s.Left) + "\n" + op + "\n" + Pretty(s.Right)
	}
	return ""
}

func (s *Select) render(indent, sep string) string {
	var b strings.Builder
	b.WriteString(indent + "SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		items[i] = it.render()
	}
	b.WriteString(strings.Join(items, ", "))
	b.WriteString(sep + indent + "FROM ")
	froms := make([]string, len(s.From))
	for i, f := range s.From {
		froms[i] = f.render()
	}
	b.WriteString(strings.Join(froms, ", "))
	if s.Where != nil {
		b.WriteString(sep + indent + "WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		gs := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			gs[i] = g.String()
		}
		b.WriteString(sep + indent + "GROUP BY " + strings.Join(gs, ", "))
		if s.Having != nil {
			b.WriteString(sep + indent + "HAVING " + s.Having.String())
		}
	}
	if len(s.OrderBy) > 0 {
		os := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			os[i] = o.Expr.String()
			if o.Desc {
				os[i] += " DESC"
			}
		}
		b.WriteString(sep + indent + "ORDER BY " + strings.Join(os, ", "))
	}
	if s.Limit >= 0 {
		b.WriteString(sep + indent + "LIMIT " + strconv.Itoa(s.Limit))
	}
	return b.String()
}

func (it SelectItem) render() string {
	if it.Star {
		if it.StarTable != "" {
			return it.StarTable + ".*"
		}
		return "*"
	}
	s := it.Expr.String()
	if it.Alias != "" {
		s += " AS " + it.Alias
	}
	return s
}

func (t TableRef) render() string {
	if t.Alias != "" {
		return t.Table + " " + t.Alias
	}
	return t.Table
}

// Expression rendering with minimal parentheses. Precedence mirrors the
// parser: OR=0, AND=1, NOT=2, comparison=3, additive=4, multiplicative=5.
func exprLevel(op string) int {
	switch op {
	case "OR":
		return 0
	case "AND":
		return 1
	case "=", "<>", "<", ">", "<=", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/":
		return 5
	}
	return 6
}

func renderExpr(e Expr, outer int) string {
	switch e := e.(type) {
	case *BinaryExpr:
		lvl := exprLevel(e.Op)
		l := renderExpr(e.L, lvl-1) // left-associative: equal level OK on the left
		r := renderExpr(e.R, lvl)
		s := l + " " + e.Op + " " + r
		if lvl <= outer {
			return "(" + s + ")"
		}
		return s
	case *UnaryExpr:
		if e.Op == "NOT" {
			s := "NOT " + renderExpr(e.X, 2)
			if 2 <= outer {
				return "(" + s + ")"
			}
			return s
		}
		return "-" + renderExpr(e.X, 5)
	default:
		return e.String()
	}
}

func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

func (n NumberLit) String() string {
	return strconv.FormatFloat(float64(n), 'f', -1, 64)
}

func (s StringLit) String() string {
	return "'" + strings.ReplaceAll(string(s), "'", "''") + "'"
}

func (b BoolLit) String() string {
	if b {
		return "TRUE"
	}
	return "FALSE"
}

func (NullLit) String() string { return "NULL" }

func (b *BinaryExpr) String() string { return renderExpr(b, -1) }
func (u *UnaryExpr) String() string  { return renderExpr(u, -1) }

func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

func (i *IsNull) String() string {
	if i.Not {
		return i.X.String() + " IS NOT NULL"
	}
	return i.X.String() + " IS NULL"
}
