package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// isASCIILetter restricts identifiers to ASCII: SQL-92 regular
// identifiers, and it keeps byte-wise lexing sound (a stray byte of a
// multibyte rune must not start an identifier).
func isASCIILetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp    // = <> < > <= >= + - * /
	TokPunct // ( ) , . ;
)

// Token is one lexical unit of SQL text.
type Token struct {
	Kind TokenKind
	Text string // keywords upper-cased; idents as written
	Num  float64
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "UNION": true, "ALL": true,
	"AND": true, "OR": true, "NOT": true, "AS": true,
	"NULL": true, "IS": true, "TRUE": true, "FALSE": true,
}

// Lex tokenizes SQL text. Keywords are recognized case-insensitively.
func Lex(src string) ([]Token, error) {
	var toks []Token
	pos := 0
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pos++
		case c == '-' && pos+1 < len(src) && src[pos+1] == '-':
			for pos < len(src) && src[pos] != '\n' {
				pos++
			}
		case c == '\'':
			start := pos
			pos++
			var b strings.Builder
			closed := false
			for pos < len(src) {
				if src[pos] == '\'' {
					if pos+1 < len(src) && src[pos+1] == '\'' { // escaped ''
						b.WriteByte('\'')
						pos += 2
						continue
					}
					pos++
					closed = true
					break
				}
				b.WriteByte(src[pos])
				pos++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at byte %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: b.String(), Pos: start})
		case c >= '0' && c <= '9':
			start := pos
			for pos < len(src) && (src[pos] >= '0' && src[pos] <= '9' || src[pos] == '.' ||
				src[pos] == 'e' || src[pos] == 'E' ||
				((src[pos] == '+' || src[pos] == '-') && pos > start && (src[pos-1] == 'e' || src[pos-1] == 'E'))) {
				// A '.' followed by a non-digit ends the number (it is the
				// qualified-name dot, though numbers rarely precede one).
				if src[pos] == '.' && (pos+1 >= len(src) || src[pos+1] < '0' || src[pos+1] > '9') {
					break
				}
				pos++
			}
			text := src[start:pos]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q at byte %d", text, start)
			}
			toks = append(toks, Token{Kind: TokNumber, Text: text, Num: v, Pos: start})
		case c == '_' || isASCIILetter(c):
			start := pos
			for pos < len(src) && (src[pos] == '_' || isASCIILetter(src[pos]) || src[pos] >= '0' && src[pos] <= '9') {
				pos++
			}
			word := src[start:pos]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c == '(' || c == ')' || c == ',' || c == '.' || c == ';':
			toks = append(toks, Token{Kind: TokPunct, Text: string(c), Pos: pos})
			pos++
		case c == '<':
			if pos+1 < len(src) && (src[pos+1] == '>' || src[pos+1] == '=') {
				toks = append(toks, Token{Kind: TokOp, Text: src[pos : pos+2], Pos: pos})
				pos += 2
			} else {
				toks = append(toks, Token{Kind: TokOp, Text: "<", Pos: pos})
				pos++
			}
		case c == '>':
			if pos+1 < len(src) && src[pos+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: ">=", Pos: pos})
				pos += 2
			} else {
				toks = append(toks, Token{Kind: TokOp, Text: ">", Pos: pos})
				pos++
			}
		case c == '!':
			if pos+1 < len(src) && src[pos+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: "<>", Pos: pos})
				pos += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected '!' at byte %d", pos)
			}
		case c == '=' || c == '+' || c == '-' || c == '*' || c == '/':
			toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: pos})
			pos++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at byte %d", c, pos)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: pos})
	return toks, nil
}
