package sqlparse

import (
	"fmt"
	"strings"
)

// Parse parses one SQL statement (SELECT, possibly a UNION chain). A
// trailing semicolon is permitted.
func Parse(src string) (Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokPunct && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("trailing input %q", p.peek().Text)
	}
	return stmt, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(src string) Statement {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type sqlParser struct {
	toks []Token
	pos  int
}

func (p *sqlParser) peek() Token { return p.toks[p.pos] }

func (p *sqlParser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *sqlParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error at byte %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *sqlParser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.peek().Text)
	}
	return nil
}

func (p *sqlParser) acceptPunct(ch string) bool {
	if t := p.peek(); t.Kind == TokPunct && t.Text == ch {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectPunct(ch string) error {
	if !p.acceptPunct(ch) {
		return p.errf("expected %q, found %q", ch, p.peek().Text)
	}
	return nil
}

func (p *sqlParser) statement() (Statement, error) {
	left, err := p.selectOrParen()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("UNION") {
		all := p.acceptKeyword("ALL")
		right, err := p.selectOrParen()
		if err != nil {
			return nil, err
		}
		left = &Union{Left: left, Right: right, All: all}
	}
	return left, nil
}

func (p *sqlParser) selectOrParen() (Statement, error) {
	if p.acceptPunct("(") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return s, nil
	}
	return p.selectStmt()
}

func (p *sqlParser) selectStmt() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		if !p.acceptPunct(",") {
			break
		}
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if p.acceptKeyword("HAVING") {
			e, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			sel.Having = e
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.Kind != TokNumber || t.Num != float64(int(t.Num)) || t.Num < 0 {
			return nil, p.errf("LIMIT requires a non-negative integer, found %q", t.Text)
		}
		sel.Limit = int(t.Num)
	}
	return sel, nil
}

func (p *sqlParser) selectItem() (SelectItem, error) {
	// t.* or *
	if t := p.peek(); t.Kind == TokOp && t.Text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	if t := p.peek(); t.Kind == TokIdent {
		// Lookahead for ident.*
		if p.pos+2 < len(p.toks) &&
			p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == "." &&
			p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
			p.next()
			p.next()
			p.next()
			return SelectItem{Star: true, StarTable: t.Text}, nil
		}
	}
	e, err := p.expr(0)
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.Kind != TokIdent {
			return SelectItem{}, p.errf("expected alias after AS, found %q", t.Text)
		}
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		p.next()
		item.Alias = t.Text
	}
	return item, nil
}

func (p *sqlParser) tableRef() (TableRef, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return TableRef{}, p.errf("expected table name, found %q", t.Text)
	}
	ref := TableRef{Table: t.Text}
	if p.acceptKeyword("AS") {
		a := p.next()
		if a.Kind != TokIdent {
			return TableRef{}, p.errf("expected alias after AS, found %q", a.Text)
		}
		ref.Alias = a.Text
	} else if a := p.peek(); a.Kind == TokIdent {
		p.next()
		ref.Alias = a.Text
	}
	return ref, nil
}

// Expression precedence, loosest first:
// 0 OR, 1 AND, 2 NOT, 3 comparison/IS, 4 + -, 5 * /, 6 unary -, primary.
func (p *sqlParser) expr(level int) (Expr, error) {
	switch level {
	case 0: // OR
		left, err := p.expr(1)
		if err != nil {
			return nil, err
		}
		for p.acceptKeyword("OR") {
			right, err := p.expr(1)
			if err != nil {
				return nil, err
			}
			left = Bin("OR", left, right)
		}
		return left, nil
	case 1: // AND
		left, err := p.expr(2)
		if err != nil {
			return nil, err
		}
		for p.acceptKeyword("AND") {
			right, err := p.expr(2)
			if err != nil {
				return nil, err
			}
			left = Bin("AND", left, right)
		}
		return left, nil
	case 2: // NOT
		if p.acceptKeyword("NOT") {
			x, err := p.expr(2)
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: "NOT", X: x}, nil
		}
		return p.expr(3)
	case 3: // comparison, IS [NOT] NULL (non-associative)
		left, err := p.expr(4)
		if err != nil {
			return nil, err
		}
		if t := p.peek(); t.Kind == TokOp && isCompareOp(t.Text) {
			p.next()
			right, err := p.expr(4)
			if err != nil {
				return nil, err
			}
			return Bin(t.Text, left, right), nil
		}
		if p.acceptKeyword("IS") {
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			return &IsNull{X: left, Not: not}, nil
		}
		return left, nil
	case 4: // + -
		left, err := p.expr(5)
		if err != nil {
			return nil, err
		}
		for {
			t := p.peek()
			if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
				p.next()
				right, err := p.expr(5)
				if err != nil {
					return nil, err
				}
				left = Bin(t.Text, left, right)
				continue
			}
			return left, nil
		}
	case 5: // * /
		left, err := p.unary()
		if err != nil {
			return nil, err
		}
		for {
			t := p.peek()
			if t.Kind == TokOp && (t.Text == "*" || t.Text == "/") {
				p.next()
				right, err := p.unary()
				if err != nil {
					return nil, err
				}
				left = Bin(t.Text, left, right)
				continue
			}
			return left, nil
		}
	}
	return p.unary()
}

func isCompareOp(op string) bool {
	switch op {
	case "=", "<>", "<", ">", "<=", ">=":
		return true
	}
	return false
}

func (p *sqlParser) unary() (Expr, error) {
	if t := p.peek(); t.Kind == TokOp && t.Text == "-" {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if n, ok := x.(NumberLit); ok {
			return NumberLit(-n), nil
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *sqlParser) primary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokNumber:
		return NumberLit(t.Num), nil
	case TokString:
		return StringLit(t.Text), nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			return NullLit{}, nil
		case "TRUE":
			return BoolLit(true), nil
		case "FALSE":
			return BoolLit(false), nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.Text)
	case TokIdent:
		// Function call?
		if p.peek().Kind == TokPunct && p.peek().Text == "(" {
			name := strings.ToUpper(t.Text)
			p.next() // (
			fc := &FuncCall{Name: name}
			if st := p.peek(); st.Kind == TokOp && st.Text == "*" {
				p.next()
				fc.Star = true
			} else if !(p.peek().Kind == TokPunct && p.peek().Text == ")") {
				for {
					a, err := p.expr(0)
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if !p.acceptPunct(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column?
		if p.peek().Kind == TokPunct && p.peek().Text == "." {
			p.next()
			c := p.next()
			if c.Kind != TokIdent {
				return nil, p.errf("expected column after %q., found %q", t.Text, c.Text)
			}
			return &ColRef{Table: t.Text, Column: c.Text}, nil
		}
		return &ColRef{Column: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			e, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %q in expression", t.Text)
}
