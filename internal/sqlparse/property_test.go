package sqlparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Random AST generation for the print-parse round-trip property. The
// generator builds only valid statements (positive LIMIT, non-empty
// clauses), since the property under test is printer/parser inversion,
// not validation.

func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return &ColRef{Table: "t" + string(rune('0'+r.Intn(3))), Column: "c" + string(rune('0'+r.Intn(4)))}
		case 1:
			return NumberLit(float64(r.Intn(1000)) / 10)
		case 2:
			return StringLit("s" + string(rune('a'+r.Intn(6))))
		default:
			return &ColRef{Column: "u" + string(rune('0'+r.Intn(3)))}
		}
	}
	ops := []string{"+", "-", "*", "/"}
	return Bin(ops[r.Intn(len(ops))], genExpr(r, depth-1), genExpr(r, depth-1))
}

func genPredicate(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		cmps := []string{"=", "<>", "<", ">", "<=", ">="}
		return Bin(cmps[r.Intn(len(cmps))], genExpr(r, 1), genExpr(r, 1))
	}
	switch r.Intn(3) {
	case 0:
		return Bin("AND", genPredicate(r, depth-1), genPredicate(r, depth-1))
	case 1:
		return Bin("OR", genPredicate(r, depth-1), genPredicate(r, depth-1))
	default:
		return &UnaryExpr{Op: "NOT", X: genPredicate(r, depth-1)}
	}
}

func genSelect(r *rand.Rand) *Select {
	sel := &Select{Limit: -1, Distinct: r.Intn(4) == 0}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		item := SelectItem{Expr: genExpr(r, 2)}
		if r.Intn(3) == 0 {
			item.Alias = "a" + string(rune('0'+i))
		}
		sel.Items = append(sel.Items, item)
	}
	for i := 0; i <= r.Intn(3); i++ {
		ref := TableRef{Table: "t" + string(rune('0'+i))}
		if r.Intn(3) == 0 {
			ref.Alias = "x" + string(rune('0'+i))
		}
		sel.From = append(sel.From, ref)
	}
	if r.Intn(2) == 0 {
		sel.Where = genPredicate(r, 2)
	}
	if r.Intn(4) == 0 {
		sel.OrderBy = []OrderItem{{Expr: genExpr(r, 1), Desc: r.Intn(2) == 0}}
	}
	if r.Intn(4) == 0 {
		sel.Limit = r.Intn(100)
	}
	return sel
}

// TestPrintParseRoundTripProperty: for randomly generated statements,
// Parse(String(s)) reprints identically.
func TestPrintParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var stmt Statement = genSelect(r)
		if r.Intn(3) == 0 {
			stmt = &Union{Left: stmt, Right: genSelect(r), All: r.Intn(2) == 0}
		}
		text := stmt.String()
		back, err := Parse(text)
		if err != nil {
			t.Logf("parse failed for %q: %v", text, err)
			return false
		}
		return back.String() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestPrettyParseRoundTripProperty: the multi-line layout parses back to
// the same statement as the single-line one.
func TestPrettyParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stmt := genSelect(r)
		back, err := Parse(Pretty(stmt))
		if err != nil {
			return false
		}
		return back.String() == stmt.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
