package relalg

import (
	"fmt"

	"repro/internal/sqlparse"
)

// CompiledExpr is an expression specialized against one schema. Compile
// resolves every column reference to its position once, so per-row
// evaluation does no name lookups, no qualified-name string building and
// no tree dispatch beyond a closure call per node. Semantics — including
// which inputs produce errors, and that errors surface per row rather
// than at compile time — match Eval exactly; batch operators compile
// their predicates at Open and run the closure per row.
type CompiledExpr func(Tuple) (Value, error)

// Compile specializes e against schema.
func Compile(e sqlparse.Expr, schema Schema) CompiledExpr {
	switch e := e.(type) {
	case *sqlparse.ColRef:
		idx := schema.Index(e.String())
		if idx < 0 {
			idx = schema.Index(e.Column)
		}
		if idx < 0 {
			err := fmt.Errorf("relalg: unknown column %s (schema %v)", e, schema.Names())
			return func(Tuple) (Value, error) { return Null, err }
		}
		return func(t Tuple) (Value, error) { return t[idx], nil }
	case sqlparse.NumberLit:
		v := NumV(float64(e))
		return func(Tuple) (Value, error) { return v, nil }
	case sqlparse.StringLit:
		v := StrV(string(e))
		return func(Tuple) (Value, error) { return v, nil }
	case sqlparse.BoolLit:
		v := BoolV(bool(e))
		return func(Tuple) (Value, error) { return v, nil }
	case sqlparse.NullLit:
		return func(Tuple) (Value, error) { return Null, nil }
	case *sqlparse.IsNull:
		x := Compile(e.X, schema)
		not := e.Not
		return func(t Tuple) (Value, error) {
			v, err := x(t)
			if err != nil {
				return Null, err
			}
			return BoolV(v.IsNull() != not), nil
		}
	case *sqlparse.UnaryExpr:
		x := Compile(e.X, schema)
		switch e.Op {
		case "NOT":
			return func(t Tuple) (Value, error) {
				v, err := x(t)
				if err != nil {
					return Null, err
				}
				if v.K != KindBool {
					if v.IsNull() {
						return Null, nil
					}
					return Null, fmt.Errorf("relalg: NOT applied to %v", v.K)
				}
				return BoolV(!v.B), nil
			}
		case "-":
			return func(t Tuple) (Value, error) {
				v, err := x(t)
				if err != nil {
					return Null, err
				}
				if v.IsNull() {
					return Null, nil
				}
				if v.K != KindNumber {
					return Null, fmt.Errorf("relalg: unary minus applied to %v", v.K)
				}
				return NumV(-v.N), nil
			}
		}
		err := fmt.Errorf("relalg: unknown unary op %q", e.Op)
		return func(Tuple) (Value, error) { return Null, err }
	case *sqlparse.BinaryExpr:
		return compileBinary(e, schema)
	case *sqlparse.FuncCall:
		err := fmt.Errorf("relalg: aggregate %s outside GROUP BY context", e.Name)
		return func(Tuple) (Value, error) { return Null, err }
	}
	err := fmt.Errorf("relalg: cannot evaluate %T", e)
	return func(Tuple) (Value, error) { return Null, err }
}

func compileBinary(e *sqlparse.BinaryExpr, schema Schema) CompiledExpr {
	l := Compile(e.L, schema)
	r := Compile(e.R, schema)
	switch e.Op {
	case "AND":
		return func(t Tuple) (Value, error) {
			lv, err := l(t)
			if err != nil {
				return Null, err
			}
			if !(lv.K == KindBool && lv.B) {
				// Short circuit.
				return BoolV(false), nil
			}
			rv, err := r(t)
			if err != nil {
				return Null, err
			}
			return BoolV(rv.K == KindBool && rv.B), nil
		}
	case "OR":
		return func(t Tuple) (Value, error) {
			lv, err := l(t)
			if err != nil {
				return Null, err
			}
			if lv.K == KindBool && lv.B {
				// Short circuit.
				return BoolV(true), nil
			}
			rv, err := r(t)
			if err != nil {
				return Null, err
			}
			return BoolV(rv.K == KindBool && rv.B), nil
		}
	case "+", "-", "*", "/":
		op := e.Op
		return func(t Tuple) (Value, error) {
			lv, err := l(t)
			if err != nil {
				return Null, err
			}
			rv, err := r(t)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			if lv.K != KindNumber || rv.K != KindNumber {
				return Null, fmt.Errorf("relalg: arithmetic %q on %v and %v", op, lv.K, rv.K)
			}
			switch op {
			case "+":
				return NumV(lv.N + rv.N), nil
			case "-":
				return NumV(lv.N - rv.N), nil
			case "*":
				return NumV(lv.N * rv.N), nil
			default:
				if rv.N == 0 {
					return Null, fmt.Errorf("relalg: division by zero")
				}
				return NumV(lv.N / rv.N), nil
			}
		}
	case "=":
		return func(t Tuple) (Value, error) {
			lv, err := l(t)
			if err != nil {
				return Null, err
			}
			rv, err := r(t)
			if err != nil {
				return Null, err
			}
			return BoolV(lv.Equal(rv)), nil
		}
	case "<>":
		return func(t Tuple) (Value, error) {
			lv, err := l(t)
			if err != nil {
				return Null, err
			}
			rv, err := r(t)
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return BoolV(false), nil
			}
			return BoolV(!lv.Equal(rv)), nil
		}
	case "<", ">", "<=", ">=":
		op := e.Op
		return func(t Tuple) (Value, error) {
			lv, err := l(t)
			if err != nil {
				return Null, err
			}
			rv, err := r(t)
			if err != nil {
				return Null, err
			}
			c, ok := lv.Compare(rv)
			if !ok {
				return BoolV(false), nil
			}
			switch op {
			case "<":
				return BoolV(c < 0), nil
			case ">":
				return BoolV(c > 0), nil
			case "<=":
				return BoolV(c <= 0), nil
			default:
				return BoolV(c >= 0), nil
			}
		}
	}
	err := fmt.Errorf("relalg: unknown binary op %q", e.Op)
	return func(Tuple) (Value, error) { return Null, err }
}

// CompileBool specializes a predicate: NULL and non-bool results count as
// false, as in EvalBool.
func CompileBool(e sqlparse.Expr, schema Schema) func(Tuple) (bool, error) {
	fn := Compile(e, schema)
	return func(t Tuple) (bool, error) {
		v, err := fn(t)
		if err != nil {
			return false, err
		}
		return v.K == KindBool && v.B, nil
	}
}
