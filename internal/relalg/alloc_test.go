package relalg

// Alloc-regression tests: pin the allocation budgets that batch
// execution and value interning bought, so a later change cannot
// silently re-inflate them. The budgets carry roughly 2x headroom over
// measured values — they gate order-of-magnitude regressions (per-tuple
// allocation sneaking back into the hot loop), not single-alloc drift.

import (
	"context"
	"fmt"
	"testing"
)

// allocRelations builds two string-keyed relations: a holds n rows with
// unique keys, b holds n rows over n/4 of those keys, so the join emits
// exactly n rows and DISTINCT sees a high-cardinality string column.
func allocRelations(n int) (*Relation, *Relation) {
	a := NewRelation("a", NewSchema(Column{"a.k", KindString}, Column{"a.v", KindNumber}))
	b := NewRelation("b", NewSchema(Column{"b.k", KindString}, Column{"b.w", KindNumber}))
	for i := 0; i < n; i++ {
		a.MustAdd(StrV(fmt.Sprintf("key-%05d", i)), NumV(float64(i)))
		b.MustAdd(StrV(fmt.Sprintf("key-%05d", i%(n/4))), NumV(float64(i%7)))
	}
	return a, b
}

// joinDistinct drains HashJoin(a ⋈ b on the string key) → DISTINCT with
// a shared interner pool, the exact pipeline shape the interning work
// targets, and returns the output row count.
func joinDistinct(ra, rb *Relation, pool *Interner) (int, error) {
	hj, err := NewHashJoin(NewScan(ra), NewScan(rb), []string{"a.k"}, []string{"b.k"}, nil, true, nil)
	if err != nil {
		return 0, err
	}
	d := NewDistinct(hj)
	d.Intern = pool
	if err := d.Open(context.Background()); err != nil {
		return 0, err
	}
	defer d.Close()
	n := 0
	for {
		b, err := d.Next(DefaultBatchSize)
		if err != nil {
			return 0, err
		}
		if b.Empty() {
			return n, nil
		}
		n += b.Len()
	}
}

// TestHashJoinDistinctAllocBudget pins the per-query allocation budget of
// the hash-join + DISTINCT microbench. Before batching and interning the
// same pipeline cost one tuple allocation per row plus one key encoding
// per probe plus per-row map traffic — five-plus allocations per output
// row. What remains is the one inherent allocation per DISTINCT-surviving
// row (its dedup key must outlive the batch as a map key); the budget
// asserts nothing beyond that creeps back in.
func TestHashJoinDistinctAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	const rows = 2048
	ra, rb := allocRelations(rows)
	want, err := joinDistinct(ra, rb, NewInterner())
	if err != nil {
		t.Fatal(err)
	}
	if want != rows {
		t.Fatalf("join emitted %d rows, want %d", want, rows)
	}
	allocs := testing.AllocsPerRun(5, func() {
		got, err := joinDistinct(ra, rb, NewInterner())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("rows = %d, want %d", got, want)
		}
	})
	t.Logf("hash-join+DISTINCT over %d rows: %.0f allocs/query", rows, allocs)
	const budget = 4300 // measured ~2145 (≈1/row); ~2x headroom
	if allocs > budget {
		t.Errorf("hash-join+DISTINCT allocates %.0f/query, budget %d", allocs, budget)
	}
}
