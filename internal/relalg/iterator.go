package relalg

// This file defines the pull-based (Volcano-style) iterator execution
// model. Every physical operator of the engine exists in two forms: a
// streaming Iterator (this file and iterops.go) and a materialized
// function over *Relation (ops.go, mergejoin.go, agg.go). The
// materialized functions are thin wrappers that build a small iterator
// tree and drain it, so the two forms cannot drift apart; the planner
// composes the iterators directly so that tuples flow through a branch
// plan in batches and a LIMIT (or any other early exit) stops pulling
// from the sources as soon as it is satisfied.
//
// # The Iterator contract
//
// An Iterator produces a finite stream of tuples, delivered in batches
// (see Batch), all conforming to the schema reported by Schema(). The
// life cycle is strict:
//
//  1. Schema() may be called at any time, including before Open; it is
//     cheap and must always return the same value.
//  2. Open(ctx) acquires resources and must be called exactly once before
//     the first Next(). The context bounds the whole run of the pipeline:
//     operators pass it to their children, leaves retain it and check it
//     while producing, and breakers check it while draining, so canceling
//     the context (or exceeding its deadline) makes Next return ctx.Err()
//     promptly even mid-stream (cancellation is observed per batch, not
//     per tuple). Opening is where pipeline breakers (Sort, GroupBy, the
//     build side of HashJoin, both sides of MergeJoin) consume their
//     children and materialize; a non-breaker operator opens its children
//     and does no tuple work.
//  3. Next(max) returns a batch of 1..max(*) tuples while tuples remain,
//     then an empty batch once exhausted — an empty batch with a nil
//     error always and only means exhaustion, and an error always comes
//     with an empty batch. max <= 0 requests DefaultBatchSize. After Next
//     has returned an empty batch or an error, further calls keep
//     returning (empty, err?) — callers may rely on that but must not
//     rely on anything stronger. (*) Operators must never return more
//     than max rows — LIMIT and the governors rely on it to bound what
//     leaves pull from sources — but they return fewer freely: an
//     operator hands back what one child batch yielded rather than
//     looping to fill, so row-gated sources (and the wire path flushing
//     per batch) keep their streaming latency; the final batch of a
//     stream is ragged.
//  4. Close() releases resources. It must be called exactly once after
//     Open succeeded, even when Next returned an error; it closes the
//     operator's children. Close after a failed Open is a no-op: an
//     operator whose Open fails must release whatever it had already
//     acquired before returning the error.
//
// Batch ownership is asymmetric: the batch itself (the Rows slice) is
// valid only until the consumer's next call to Next or Close — producers
// reuse the backing array. The tuples inside are durable: operators
// either hand out freshly built tuples or tuples aliasing an underlying
// materialized relation, and never overwrite a tuple they have already
// handed out, so consumers that buffer tuples across calls (breakers do)
// keep them without cloning.
//
// Operators that accumulate an output batch across several child pulls
// (joins) flush before failing: when a child errors after rows were
// already assembled, they return the partial batch first and re-surface
// the error on the following call, so a mid-stream fault loses no rows
// that the tuple-at-a-time contract would have delivered.
//
// Iterators are single-use and not safe for concurrent use. A consumer
// that stops early (LIMIT) simply stops calling Next and calls Close;
// operators must tolerate being closed before exhaustion.

import "context"

// Iterator is the pull-based batch stream every streaming operator
// implements. See the package comment above for the full contract.
type Iterator interface {
	// Schema describes the tuples this iterator produces.
	Schema() Schema
	// Open prepares the iterator (and its children) for Next calls. The
	// context bounds the pipeline's run; cancellation surfaces as an
	// error from Next (or from Open itself in pipeline breakers).
	Open(ctx context.Context) error
	// Next returns the next batch of at most max tuples (max <= 0:
	// DefaultBatchSize); an empty batch means the stream is done.
	Next(max int) (Batch, error)
	// Close releases resources; it closes children.
	Close() error
}

// Stager is an optional hook breaker operators use to park a fully
// materialized intermediate (a sort buffer, a hash-build input, a
// merge-join side). The engine passes a store.TempStore-backed Stager so
// large intermediates spill to local secondary storage instead of
// occupying memory (and so per-session staging budgets are enforced at
// the staging point); a nil Stager keeps everything resident. Staged
// relations cross an interner pool boundary: they are encoded with the
// collision-proof Value.Key forms, never with interned handles.
type Stager interface {
	// Stage parks rel and returns the relation to continue with (the
	// same value, or a disk-backed reload of it).
	Stage(rel *Relation) (*Relation, error)
}

// stage applies st to rel when non-nil.
func stage(st Stager, rel *Relation) (*Relation, error) {
	if st == nil {
		return rel, nil
	}
	return st.Stage(rel)
}

// RowCountHint is optionally implemented by iterators that can estimate
// how many rows they will yield. Full drains (Collect, breakers) use it
// only to presize their buffers, so a wrong hint costs memory or a
// regrow, never correctness. It is queried after Open; row-preserving
// wrappers forward their child's hint, row-reducing ones (filters,
// limits) must not.
type RowCountHint interface {
	RowCountHint() int
}

// maxHintRows caps how far a hint may presize a drain buffer: a wildly
// wrong estimate (a cold cost model) must not allocate unbounded memory
// up front. Past the cap, growth proceeds by the normal append ladder.
const maxHintRows = 1 << 20

// presizeHint returns the presize capacity for draining it, or 0.
func presizeHint(it Iterator) int {
	h, ok := it.(RowCountHint)
	if !ok {
		return 0
	}
	n := h.RowCountHint()
	if n < 0 {
		return 0
	}
	if n > maxHintRows {
		n = maxHintRows
	}
	return n
}

// Collect drains it into a materialized relation named name. It runs the
// full Open/Next/Close cycle and is the bridge from the streaming world
// back to *Relation. The drain loop checks ctx per batch, so a canceled
// context stops a breaker's buffering (and any other full drain) mid-way.
func Collect(ctx context.Context, it Iterator, name string) (*Relation, error) {
	hint := presizeHint(it)
	it = Checked(it)
	if err := it.Open(ctx); err != nil {
		return nil, err
	}
	out := NewRelation(name, it.Schema())
	if hint > 0 {
		out.Tuples = make([]Tuple, 0, hint)
	}
	for {
		if err := ctx.Err(); err != nil {
			it.Close()
			return nil, err
		}
		b, err := it.Next(DefaultBatchSize)
		if err != nil {
			it.Close()
			return nil, err
		}
		if b.Empty() {
			break
		}
		//lint:allow batchretain Collect is the durable boundary: the root iterator owns no transient arena, so its rows are durable by contract
		out.Tuples = append(out.Tuples, b.Rows...)
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// ScanIter streams the tuples of a materialized relation in order,
// serving each batch as a zero-copy subslice of the relation. It is the
// leaf of every iterator tree built over in-memory data; as a leaf it
// retains the Open context and checks it per batch.
type ScanIter struct {
	rel *Relation
	ctx context.Context
	pos int
}

// NewScan returns a scan over rel.
func NewScan(rel *Relation) *ScanIter { return &ScanIter{rel: rel} }

// Schema implements Iterator.
func (s *ScanIter) Schema() Schema { return s.rel.Schema }

// Open implements Iterator.
func (s *ScanIter) Open(ctx context.Context) error {
	s.ctx = ctx
	s.pos = 0
	return ctx.Err()
}

// Next implements Iterator.
func (s *ScanIter) Next(max int) (Batch, error) {
	if s.pos >= len(s.rel.Tuples) {
		return Batch{}, nil
	}
	if err := s.ctx.Err(); err != nil {
		return Batch{}, err
	}
	if max <= 0 {
		max = DefaultBatchSize
	}
	end := s.pos + max
	if end > len(s.rel.Tuples) {
		end = len(s.rel.Tuples)
	}
	b := Batch{Rows: s.rel.Tuples[s.pos:end]}
	s.pos = end
	return b, nil
}

// Close implements Iterator.
func (s *ScanIter) Close() error { return nil }

// RowCountHint implements RowCountHint: a scan's yield is exact.
func (s *ScanIter) RowCountHint() int { return len(s.rel.Tuples) }

// DeferredIter delays building its child until Open: the planner uses it
// to keep whole mediation branches unplanned and unexecuted until the
// consumer actually pulls from them (so an upstream LIMIT can skip later
// branches entirely). The Open context is handed to the build function so
// deferred work (bind-join fetches, staging drains) stays cancellable.
type DeferredIter struct {
	schema    Schema
	build     func(ctx context.Context) (Iterator, error)
	child     Iterator
	transient bool // forward MarkTransient to the built child
}

// NewDeferred returns an iterator with the given schema whose child is
// built by build at Open time.
func NewDeferred(schema Schema, build func(ctx context.Context) (Iterator, error)) *DeferredIter {
	return &DeferredIter{schema: schema, build: build}
}

// Schema implements Iterator.
func (d *DeferredIter) Schema() Schema { return d.schema }

// Open implements Iterator.
func (d *DeferredIter) Open(ctx context.Context) error {
	child, err := d.build(ctx)
	if err != nil {
		return err
	}
	if d.transient {
		MarkTransient(child)
	}
	if err := child.Open(ctx); err != nil {
		return err
	}
	d.child = child
	return nil
}

// Next implements Iterator.
func (d *DeferredIter) Next(max int) (Batch, error) {
	if d.child == nil {
		return Batch{}, nil
	}
	return d.child.Next(max)
}

// Close implements Iterator.
func (d *DeferredIter) Close() error {
	if d.child == nil {
		return nil
	}
	err := d.child.Close()
	d.child = nil
	return err
}

// RowCountHint forwards the built child's hint (only meaningful after
// Open, which is when drains query it).
func (d *DeferredIter) RowCountHint() int {
	if h, ok := d.child.(RowCountHint); ok {
		return h.RowCountHint()
	}
	return 0
}

// RenameIter presents its child under a different schema (same arity and
// tuple contents; only column names change). The planner uses it to
// qualify source columns with their FROM-clause binding.
type RenameIter struct {
	child  Iterator
	schema Schema
}

// NewRename wraps child with the given schema.
func NewRename(child Iterator, schema Schema) *RenameIter {
	return &RenameIter{child: child, schema: schema}
}

// Schema implements Iterator.
func (r *RenameIter) Schema() Schema { return r.schema }

// Open implements Iterator.
func (r *RenameIter) Open(ctx context.Context) error { return r.child.Open(ctx) }

// Next implements Iterator.
func (r *RenameIter) Next(max int) (Batch, error) { return r.child.Next(max) }

// Close implements Iterator.
func (r *RenameIter) Close() error { return r.child.Close() }

// RowCountHint forwards the child's hint (renaming preserves rows).
func (r *RenameIter) RowCountHint() int {
	if h, ok := r.child.(RowCountHint); ok {
		return h.RowCountHint()
	}
	return 0
}

// OnOpenIter invokes a callback the first time Open is called; the
// planner uses it to count how many branch pipelines actually start
// running (ExecStats.BranchesRun) under lazy evaluation.
type OnOpenIter struct {
	child Iterator
	fn    func()
}

// NewOnOpen wraps child so fn runs when the pipeline is opened.
func NewOnOpen(child Iterator, fn func()) *OnOpenIter {
	return &OnOpenIter{child: child, fn: fn}
}

// Schema implements Iterator.
func (o *OnOpenIter) Schema() Schema { return o.child.Schema() }

// Open implements Iterator.
func (o *OnOpenIter) Open(ctx context.Context) error {
	if o.fn != nil {
		o.fn()
		o.fn = nil
	}
	return o.child.Open(ctx)
}

// Next implements Iterator.
func (o *OnOpenIter) Next(max int) (Batch, error) { return o.child.Next(max) }

// Close implements Iterator.
func (o *OnOpenIter) Close() error { return o.child.Close() }
