//go:build invariants

package relalg

// Runtime-assertion layer: the dynamic twin of the static analyzer suite
// in internal/analysis. The linters prove contract compliance where the
// code is simple enough to see through; this file catches what they
// cannot — violations that only materialize on a concrete execution path.
// Built only under `-tags invariants` (a dedicated CI job runs the tests
// with the tag and -race); invariants_off.go supplies the no-op twins for
// every other build.
//
// Three contracts are armed:
//
//   - Batch ownership (batchretain's dynamic twin): when a Transient
//     BatchBuilder recycles its arena on Reset, every recycled slot is
//     first overwritten with a poison Kind. A consumer that illegally
//     retained a row past its Next/Close window trips the poison the
//     moment it touches a value (Equal, Compare, SortKey, key encoding)
//     instead of silently computing with overwritten data.
//   - Iterator lifecycle (closebalance's dynamic twin): Checked wraps
//     pipeline roots (Collect, BuildStream, NewCursor) in a state machine
//     asserting Open-before-Next, no use after Close, single Close,
//     batches within the requested bound, rows matching the schema's
//     arity, and exhaustion stability (no rows after the empty batch).
//   - Interner scope: handles are dense 1..Size per pool; a handle
//     outside that range reached the pool from somewhere else (a
//     persisted or cross-pool handle — forbidden by intern.go's scope
//     rule).

import (
	"context"
	"fmt"
)

// InvariantsEnabled reports whether the runtime-assertion layer is
// compiled in (`go build -tags invariants`).
const InvariantsEnabled = true

// poisonKind marks a Value slot whose transient batch has been recycled.
// No valid Kind is negative, so the poison can never collide with data.
const poisonKind Kind = -0x7015

// poisonValues overwrites recycled transient-arena slots so any retained
// alias fails loudly on first use.
func poisonValues(vals []Value) {
	for i := range vals {
		vals[i] = Value{K: poisonKind, S: "poisoned transient slot"}
	}
}

// checkLive panics when v is a poisoned transient-arena slot: some
// consumer kept a row from a transient batch past its Next/Close window.
func (v Value) checkLive() {
	if v.K == poisonKind {
		panic("relalg: use of a value from a recycled transient batch — a consumer " +
			"retained a row past its Next/Close window; copy rows with " +
			"append(Tuple(nil), row...) before buffering (see the batchretain analyzer)")
	}
}

// checkHandle panics when h cannot have come from in: pools hand out
// dense handles 1..Size, so anything outside that range crossed a pool
// boundary (or was persisted), which intern.go forbids.
func checkHandle(in *Interner, h uint32) {
	if h == 0 || h > uint32(len(in.ids)) {
		panic(fmt.Sprintf("relalg: interner handle %d outside pool of %d entries — "+
			"handles are scoped to one pool and must never be persisted", h, len(in.ids)))
	}
}

// Checked wraps it in the contract-asserting shim. Installed at pipeline
// roots, where the engine (not an operator) drives the lifecycle.
func Checked(it Iterator) Iterator { return &checkedIter{it: it} }

// checkedOpened is Checked for an iterator that is already open
// (NewCursor documents that precondition).
func checkedOpened(it Iterator) Iterator { return &checkedIter{it: it, opened: true} }

// checkedIter asserts the Iterator contract of iterator.go around an
// inner iterator.
type checkedIter struct {
	it        Iterator
	opened    bool
	closed    bool
	exhausted bool
	failed    bool
}

func (c *checkedIter) Schema() Schema { return c.it.Schema() }

func (c *checkedIter) Open(ctx context.Context) error {
	if c.opened {
		panic("relalg: iterator contract: Open called twice")
	}
	if c.closed {
		panic("relalg: iterator contract: Open after Close")
	}
	err := c.it.Open(ctx)
	if err == nil {
		c.opened = true
	}
	return err
}

func (c *checkedIter) Next(max int) (Batch, error) {
	if !c.opened {
		panic("relalg: iterator contract: Next before a successful Open")
	}
	if c.closed {
		panic("relalg: iterator contract: Next after Close")
	}
	b, err := c.it.Next(max)
	bound := max
	if bound <= 0 {
		bound = DefaultBatchSize
	}
	if len(b.Rows) > bound {
		panic(fmt.Sprintf("relalg: iterator contract: Next(%d) returned %d rows — "+
			"operators must never exceed the requested bound", max, len(b.Rows)))
	}
	if err != nil && len(b.Rows) > 0 {
		panic("relalg: iterator contract: an error must come with an empty batch")
	}
	if c.exhausted && len(b.Rows) > 0 {
		panic("relalg: iterator contract: non-empty batch after exhaustion")
	}
	if c.failed && err == nil && len(b.Rows) > 0 {
		panic("relalg: iterator contract: rows after an error")
	}
	if arity := len(c.it.Schema().Columns); arity > 0 {
		for _, r := range b.Rows {
			if len(r) != arity {
				panic(fmt.Sprintf("relalg: iterator contract: row arity %d does not "+
					"match schema arity %d", len(r), arity))
			}
		}
	}
	if err != nil {
		c.failed = true
	} else if len(b.Rows) == 0 {
		c.exhausted = true
	}
	return b, err
}

func (c *checkedIter) Close() error {
	if c.closed {
		panic("relalg: iterator contract: Close called twice")
	}
	if !c.opened {
		// Close after a failed Open is documented as a no-op; tolerate it
		// without touching the inner iterator.
		c.closed = true
		return nil
	}
	c.closed = true
	return c.it.Close()
}
