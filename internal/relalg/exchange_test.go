package relalg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sqlparse"
)

// randomKeyedRel builds a relation with a string key, a numeric key and
// a payload column: NULL keys, NaN keys, duplicates and (optionally) a
// heavy skew toward one key — the adversarial shapes for partitioned
// operators.
func randomKeyedRel(rng *rand.Rand, name string, n, keyCard int, skew bool) *Relation {
	sch := Schema{Columns: []Column{
		{Name: "sk", Type: KindString},
		{Name: "nk", Type: KindNumber},
		{Name: "pay", Type: KindNumber},
	}}
	rel := NewRelation(name, sch)
	for i := 0; i < n; i++ {
		k := rng.Intn(keyCard)
		if skew && rng.Intn(3) > 0 {
			k = 0
		}
		sk := StrV(fmt.Sprintf("k%d", k))
		if rng.Intn(10) == 0 {
			sk = Null
		}
		nk := NumV(float64(k % 7))
		switch rng.Intn(17) {
		case 0:
			nk = Null
		case 1:
			nk = NumV(math.NaN())
		}
		rel.Tuples = append(rel.Tuples, Tuple{sk, nk, NumV(float64(i))})
	}
	return rel
}

// drainOrdered pulls it to exhaustion and returns every row in stream
// order (headers copied; the tuples themselves are durable).
func drainOrdered(t *testing.T, it Iterator, max int) []Tuple {
	t.Helper()
	if err := it.Open(context.Background()); err != nil {
		t.Fatalf("Open: %v", err)
	}
	var out []Tuple
	for {
		b, err := it.Next(max)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if b.Empty() {
			break
		}
		out = append(out, b.Rows...)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return out
}

func requireSameRows(t *testing.T, label string, want, got []Tuple) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: row count %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].FullKey() != got[i].FullKey() {
			t.Fatalf("%s: row %d differs:\n got %v\nwant %v", label, i, got[i], want[i])
		}
	}
}

// TestParallelHashJoinMatchesSerial pins the determinism rule: the
// parallel hash join's output is identical in content and order to the
// serial HashJoinIter across seeds, key shapes, build sides, skew,
// residuals and worker counts.
func TestParallelHashJoinMatchesSerial(t *testing.T) {
	keyShapes := []struct {
		name string
		keys []string
	}{
		{"single-string", []string{"sk"}},
		{"single-number", []string{"nk"}},
		{"multi", []string{"sk", "nk"}},
	}
	for seed := int64(0); seed < 6; seed++ {
		for _, ks := range keyShapes {
			for _, buildLeft := range []bool{false, true} {
				for _, par := range []int{1, 2, 3, 8} {
					rng := rand.New(rand.NewSource(seed))
					left := randomKeyedRel(rng, "l", 200+rng.Intn(200), 20, seed%2 == 0)
					right := randomKeyedRel(rng, "r", 150+rng.Intn(200), 20, seed%2 == 1)
					var residual sqlparse.Expr
					if seed%3 == 0 {
						residual = mustExpr("pay < 300")
					}
					serial, err := NewHashJoin(NewScan(left), NewScan(right), ks.keys, ks.keys, residual, buildLeft, nil)
					if err != nil {
						t.Fatal(err)
					}
					want := drainOrdered(t, serial, 64)
					pj, err := NewParallelHashJoin(NewScan(left), NewScan(right), ks.keys, ks.keys, residual, buildLeft, nil, par)
					if err != nil {
						t.Fatal(err)
					}
					got := drainOrdered(t, pj, 64)
					requireSameRows(t,
						fmt.Sprintf("seed=%d shape=%s buildLeft=%v par=%d", seed, ks.name, buildLeft, par),
						want, got)
				}
			}
		}
	}
}

// TestParallelHashJoinRaggedProbe drives the probe side through ragged
// batch shapes so dispatch-order reassembly is exercised across uneven
// chunks.
func TestParallelHashJoinRaggedProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	left := randomKeyedRel(rng, "l", 500, 12, true)
	right := randomKeyedRel(rng, "r", 300, 12, false)
	serial, err := NewHashJoin(newRaggedScan(left, []int{1, 7, 3, 64}), NewScan(right), []string{"sk"}, []string{"sk"}, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := drainOrdered(t, serial, 32)
	pj, err := NewParallelHashJoin(newRaggedScan(left, []int{1, 7, 3, 64}), NewScan(right), []string{"sk"}, []string{"sk"}, nil, false, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := drainOrdered(t, pj, 32)
	requireSameRows(t, "ragged probe", want, got)
}

// errAfterScan fails the stream with a fixed error after serving n rows.
type errAfterScan struct {
	*ScanIter
	n    int
	seen int
	err  error
}

func (e *errAfterScan) Next(max int) (Batch, error) {
	if e.seen >= e.n {
		return Batch{}, e.err
	}
	if rem := e.n - e.seen; max > rem {
		max = rem
	}
	b, err := e.ScanIter.Next(max)
	e.seen += len(b.Rows)
	return b, err
}

// TestParallelHashJoinProbeError pins the flush-before-fail contract
// under the exchange: a probe-side failure surfaces after exactly the
// join output of every batch dispatched before it — the same prefix the
// serial join emits.
func TestParallelHashJoinProbeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	left := randomKeyedRel(rng, "l", 400, 10, false)
	right := randomKeyedRel(rng, "r", 200, 10, false)
	boom := errors.New("probe wire dropped")
	mk := func(par int) (Iterator, error) {
		probe := &errAfterScan{ScanIter: NewScan(left), n: 250, err: boom}
		if par > 1 {
			return NewParallelHashJoin(probe, NewScan(right), []string{"sk"}, []string{"sk"}, nil, false, nil, par)
		}
		return NewHashJoin(probe, NewScan(right), []string{"sk"}, []string{"sk"}, nil, false, nil)
	}
	drainUntilErr := func(it Iterator) ([]Tuple, error) {
		if err := it.Open(context.Background()); err != nil {
			return nil, err
		}
		defer it.Close()
		var out []Tuple
		for {
			b, err := it.Next(DefaultBatchSize)
			if err != nil {
				return out, err
			}
			if b.Empty() {
				return out, nil
			}
			out = append(out, b.Rows...)
		}
	}
	serial, err := mk(1)
	if err != nil {
		t.Fatal(err)
	}
	want, werr := drainUntilErr(serial)
	if !errors.Is(werr, boom) {
		t.Fatalf("serial error = %v, want %v", werr, boom)
	}
	pj, err := mk(4)
	if err != nil {
		t.Fatal(err)
	}
	got, gerr := drainUntilErr(pj)
	if !errors.Is(gerr, boom) {
		t.Fatalf("parallel error = %v, want %v", gerr, boom)
	}
	requireSameRows(t, "prefix before probe error", want, got)
}

// TestParallelHashJoinCloseMidStream closes the exchange while workers
// are mid-flight: Close must cancel, join every goroutine and release
// the probe child without deadlocking (the race job runs this).
func TestParallelHashJoinCloseMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	left := randomKeyedRel(rng, "l", 5000, 8, true)
	right := randomKeyedRel(rng, "r", 2000, 8, false)
	for _, pulls := range []int{0, 1, 5} {
		pj, err := NewParallelHashJoin(NewScan(left), NewScan(right), []string{"sk"}, []string{"sk"}, nil, false, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := pj.Open(context.Background()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pulls; i++ {
			if _, err := pj.Next(16); err != nil {
				t.Fatal(err)
			}
		}
		if err := pj.Close(); err != nil {
			t.Fatalf("Close after %d pulls: %v", pulls, err)
		}
		// Idempotent double Close.
		if err := pj.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

// TestParallelSortMatchesSerial pins the merge exchange: the parallel
// chunk sort reproduces the serial stable sort byte for byte, including
// tie order, Desc keys, NULL and NaN keys.
func TestParallelSortMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rel := randomKeyedRel(rng, "s", 1+rng.Intn(700), 9, seed%2 == 0)
		keys := []OrderKey{{Expr: mustExpr("nk")}, {Expr: mustExpr("sk"), Desc: seed%2 == 0}}
		want, err := sortRelation(rel, keys)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 2, 5, 8} {
			got, err := parallelSortRelation(rel, keys, par)
			if err != nil {
				t.Fatalf("seed=%d par=%d: %v", seed, par, err)
			}
			requireSameRows(t, fmt.Sprintf("sort seed=%d par=%d", seed, par), want.Tuples, got.Tuples)
		}
	}
}

// TestParallelGroupByMatchesSerial pins the partitioned grouping core:
// group output order (first appearance), aggregate values (including
// order-sensitive float sums) and HAVING filtering all match the serial
// core across seeds and worker counts.
func TestParallelGroupByMatchesSerial(t *testing.T) {
	items := []AggItem{
		{Name: "sk", Expr: mustExpr("sk")},
		{Name: "n", Expr: mustExpr("COUNT(pay)")},
		{Name: "total", Expr: mustExpr("SUM(pay)")},
		{Name: "hi", Expr: mustExpr("MAX(nk)")},
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rel := randomKeyedRel(rng, "g", 1+rng.Intn(900), 15, seed%2 == 1)
		keys := []sqlparse.Expr{mustExpr("sk")}
		var having sqlparse.Expr
		if seed%2 == 0 {
			having = mustExpr("COUNT(pay) > 2")
		}
		want, err := groupByInterned(rel, keys, items, having, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 2, 4, 7} {
			got, err := groupByParallel(rel, keys, items, having, par)
			if err != nil {
				t.Fatalf("seed=%d par=%d: %v", seed, par, err)
			}
			requireSameRows(t, fmt.Sprintf("groupby seed=%d par=%d", seed, par), want.Tuples, got.Tuples)
		}
	}
}

// TestParallelIterHooks runs the SortIter.Par and GroupByIter.Par paths
// end to end through the iterator contract.
func TestParallelIterHooks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := randomKeyedRel(rng, "s", 400, 6, false)

	ser := NewSort(NewScan(rel), []OrderKey{{Expr: mustExpr("sk")}}, nil)
	want := drainOrdered(t, ser, 32)
	par := NewSort(NewScan(rel), []OrderKey{{Expr: mustExpr("sk")}}, nil)
	par.Par = 4
	requireSameRows(t, "SortIter.Par", want, drainOrdered(t, par, 32))

	items := []AggItem{{Name: "sk", Expr: mustExpr("sk")}, {Name: "n", Expr: mustExpr("COUNT(pay)")}}
	gser := NewGroupBy(NewScan(rel), []sqlparse.Expr{mustExpr("sk")}, items, nil, nil)
	gwant := drainOrdered(t, gser, 32)
	gpar := NewGroupBy(NewScan(rel), []sqlparse.Expr{mustExpr("sk")}, items, nil, nil)
	gpar.Par = 4
	requireSameRows(t, "GroupByIter.Par", gwant, drainOrdered(t, gpar, 32))
}

// TestPartitionHashPoolIndependence pins the routing rule that makes
// cross-pool probing sound: the hash depends only on value content
// (string bytes, canonical NaN), never on interner handles.
func TestPartitionHashPoolIndependence(t *testing.T) {
	a := Tuple{StrV("x"), NumV(math.NaN())}
	b := Tuple{StrV("x"), NumV(math.Float64frombits(0x7FF8000000000001))} // NaN, odd payload
	if partitionHash(a, []int{0, 1}) != partitionHash(b, []int{0, 1}) {
		t.Fatal("NaN payloads must hash canonically")
	}
	if partitionHash(Tuple{StrV("ab"), StrV("c")}, []int{0, 1}) ==
		partitionHash(Tuple{StrV("a"), StrV("bc")}, []int{0, 1}) {
		t.Fatal("adjacent strings must not alias")
	}
	if partitionHash(Tuple{Null}, []int{0}) == partitionHash(Tuple{StrV("")}, []int{0}) {
		t.Fatal("NULL and empty string must hash differently")
	}
}
