//go:build invariants

package relalg

// Tests for the runtime-assertion layer (invariants_on.go). They run only
// under `go test -tags invariants` — the dedicated CI job — and verify
// that each armed contract actually fires: a broken batch consumer trips
// the transient-arena poison, a broken producer or driver trips the
// Checked lifecycle shim, and an out-of-pool interner handle is rejected.

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func mustPanic(t *testing.T, wantSub string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic containing %q, got none", wantSub)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, wantSub) {
			t.Fatalf("panic = %q, want substring %q", msg, wantSub)
		}
	}()
	fn()
}

func numRelation(name string, n int) *Relation {
	rel := NewRelation(name, NewSchema(Column{Name: name + "_x", Type: KindNumber}))
	for i := 0; i < n; i++ {
		rel.Tuples = append(rel.Tuples, Tuple{NumV(float64(i))})
	}
	return rel
}

// TestPoisonCatchesBrokenBatchConsumer is the runtime twin of the
// batchretain analyzer's testdata/src/batchretain_bad fixture: a consumer
// that buffers raw rows of a transient-marked pipeline across Next calls.
// Statically the analyzer flags the retention; dynamically the recycled
// arena is poisoned, so the first touch of a stolen value panics instead
// of silently computing with overwritten data.
func TestPoisonCatchesBrokenBatchConsumer(t *testing.T) {
	outer := numRelation("a", 8)
	inner := NewRelation("b", NewSchema(Column{Name: "y", Type: KindNumber}))
	inner.Tuples = append(inner.Tuples, Tuple{NumV(100)})

	it := NewNestedLoop(NewScan(outer), inner, nil)
	MarkTransient(it)
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// The deliberately-broken consumer: retains b.Rows' tuples uncopied.
	b, err := it.Next(4)
	if err != nil || b.Empty() {
		t.Fatalf("first batch: %v (empty=%v)", err, b.Empty())
	}
	stolen := append([]Tuple(nil), b.Rows...) // copies headers, not values
	// Drain on: each pull recycles the arena under the stolen rows. While
	// a following batch happens to refill the very same slots the
	// corruption is silent (that is the production failure mode); the
	// recycle on the exhausting pull leaves the poison in place, so the
	// stolen rows are caught deterministically.
	for {
		nb, err := it.Next(4)
		if err != nil {
			t.Fatal(err)
		}
		if nb.Empty() {
			break
		}
	}

	mustPanic(t, "recycled transient batch", func() {
		_ = stolen[0][0].Equal(NumV(0))
	})
}

// TestPoisonSparesCopiedRows proves the sanctioned idiom survives: a
// consumer that copies rows before buffering keeps valid values across
// arena recycling.
func TestPoisonSparesCopiedRows(t *testing.T) {
	outer := numRelation("a", 8)
	inner := NewRelation("b", NewSchema(Column{Name: "y", Type: KindNumber}))
	inner.Tuples = append(inner.Tuples, Tuple{NumV(100)})

	it := NewNestedLoop(NewScan(outer), inner, nil)
	MarkTransient(it)
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	b, err := it.Next(4)
	if err != nil || b.Empty() {
		t.Fatalf("first batch: %v (empty=%v)", err, b.Empty())
	}
	var kept []Tuple
	for _, row := range b.Rows {
		kept = append(kept, append(Tuple(nil), row...))
	}
	for {
		nb, err := it.Next(4)
		if err != nil {
			t.Fatal(err)
		}
		if nb.Empty() {
			break
		}
	}
	if !kept[0][0].Equal(NumV(0)) {
		t.Fatalf("copied row corrupted: %v", kept[0])
	}
}

func TestCheckedLifecycleAssertions(t *testing.T) {
	rel := numRelation("r", 2)

	mustPanic(t, "Next before a successful Open", func() {
		Checked(NewScan(rel)).Next(1)
	})

	it := Checked(NewScan(rel))
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "Open called twice", func() { it.Open(context.Background()) })
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "Next after Close", func() { it.Next(1) })
	mustPanic(t, "Close called twice", func() { it.Close() })
}

// oversizedIter violates the batch bound: Next(max) returns max+1 rows.
type oversizedIter struct{ schema Schema }

func (o *oversizedIter) Schema() Schema               { return o.schema }
func (o *oversizedIter) Open(_ context.Context) error { return nil }
func (o *oversizedIter) Close() error                 { return nil }
func (o *oversizedIter) Next(max int) (Batch, error) {
	rows := make([]Tuple, max+1)
	for i := range rows {
		rows[i] = Tuple{NumV(1)}
	}
	return Batch{Rows: rows}, nil
}

// zombieIter violates exhaustion stability: empty batch, then rows again.
type zombieIter struct {
	schema Schema
	calls  int
}

func (z *zombieIter) Schema() Schema               { return z.schema }
func (z *zombieIter) Open(_ context.Context) error { return nil }
func (z *zombieIter) Close() error                 { return nil }
func (z *zombieIter) Next(int) (Batch, error) {
	z.calls++
	if z.calls == 1 {
		return Batch{}, nil
	}
	return Batch{Rows: []Tuple{{NumV(1)}}}, nil
}

// raggedIter violates schema arity: two columns declared, one delivered.
type raggedIter struct{ done bool }

func (r *raggedIter) Schema() Schema {
	return NewSchema(Column{Name: "a", Type: KindNumber}, Column{Name: "b", Type: KindNumber})
}
func (r *raggedIter) Open(_ context.Context) error { return nil }
func (r *raggedIter) Close() error                 { return nil }
func (r *raggedIter) Next(int) (Batch, error) {
	if r.done {
		return Batch{}, nil
	}
	r.done = true
	return Batch{Rows: []Tuple{{NumV(1)}}}, nil
}

func TestCheckedBatchAssertions(t *testing.T) {
	schema := NewSchema(Column{Name: "x", Type: KindNumber})

	over := Checked(&oversizedIter{schema: schema})
	if err := over.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "exceed the requested bound", func() { over.Next(4) })

	zombie := Checked(&zombieIter{schema: schema})
	if err := zombie.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	if b, err := zombie.Next(4); err != nil || !b.Empty() {
		t.Fatalf("first pull should exhaust: %v %v", b, err)
	}
	mustPanic(t, "non-empty batch after exhaustion", func() { zombie.Next(4) })

	ragged := Checked(&raggedIter{})
	if err := ragged.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "row arity", func() { ragged.Next(4) })
}

func TestInternerHandleValidation(t *testing.T) {
	in := NewInterner()
	h := in.Intern("alpha")
	checkHandle(in, h) // in-pool: must not panic

	mustPanic(t, "outside pool", func() { checkHandle(in, h+1) })
	mustPanic(t, "outside pool", func() { checkHandle(in, 0) })
}

func TestInvariantsEnabledReportsTag(t *testing.T) {
	if !InvariantsEnabled {
		t.Fatal("InvariantsEnabled must be true under -tags invariants")
	}
}
