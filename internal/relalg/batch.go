package relalg

// DefaultBatchSize is the row count a consumer requests per Next call
// when it has no tighter bound (a LIMIT remainder, a governor budget) to
// propagate down the pipeline. ~1k rows amortizes per-call overhead
// without letting a single batch dominate memory.
const DefaultBatchSize = 1024

// Batch is the unit of flow between operators: an ordered block of 1..max
// tuples. The zero Batch (no rows) marks exhaustion — operators never
// hand an empty batch to a consumer mid-stream.
//
// Ownership: a batch (its Rows slice) is valid only until the consumer's
// next call to Next or Close on the producing iterator — producers may
// reuse the slice's backing array across calls. The Tuples inside are
// durable: consumers that buffer rows across calls (breakers do) may keep
// them without cloning, exactly as under the tuple-at-a-time contract.
type Batch struct {
	Rows []Tuple
}

// Len returns the number of rows in the batch.
func (b Batch) Len() int { return len(b.Rows) }

// Empty reports whether the batch marks exhaustion.
func (b Batch) Empty() bool { return len(b.Rows) == 0 }

// BatchBuilder assembles output batches for operators that construct new
// rows (projections, join concatenations). Row headers live in a buffer
// reused across batches; the Values live in an append-only arena shared
// by every batch the builder produces: handed-out tuples alias their
// arena slots forever (slots are never rewritten, satisfying tuple
// durability), and the unused tail keeps serving subsequent rows, so the
// builder costs ~1 chunk allocation per few hundred rows instead of one
// tuple allocation per row.
type BatchBuilder struct {
	arity int
	arena []Value
	rows  []Tuple
	// Transient recycles the arena on Reset instead of letting it grow:
	// the next batch overwrites the previous one's values. Only the
	// planner sets it, via MarkTransient, when the operator's consumer
	// provably re-copies or discards every row before pulling again.
	Transient bool
}

// Arena chunk sizing: start small so short pipelines stay cheap, double
// up to a bound so wide streams settle into a few large chunks (the
// abandoned tail of a full chunk is the only waste).
const (
	minArenaRows   = 16
	maxArenaValues = 4096
)

// NewBatchBuilder returns a builder for rows of the given arity.
func NewBatchBuilder(arity int) *BatchBuilder { return &BatchBuilder{arity: arity} }

// Reset starts a new batch of up to capRows rows. Only the row-header
// buffer resets; the arena persists (earlier batches alias it) unless
// the builder is Transient. capRows is a ceiling, not a reservation —
// small streams never pay for the batch size a consumer merely allowed,
// the header grows with use.
func (bb *BatchBuilder) Reset(capRows int) {
	bb.rows = bb.rows[:0]
	if bb.Transient {
		poisonValues(bb.arena)
		bb.arena = bb.arena[:0]
	}
}

// Len returns the number of rows appended since the last Reset.
func (bb *BatchBuilder) Len() int { return len(bb.rows) }

// Row appends one row and returns it for in-place filling. The caller
// must set every column (a slot reclaimed by DropLast may hold stale
// values).
func (bb *BatchBuilder) Row() Tuple {
	if cap(bb.arena)-len(bb.arena) < bb.arity {
		// A fresh chunk; rows already handed out keep aliasing the old
		// one, which is exactly why the arena is never recycled.
		n := 2 * cap(bb.arena)
		if bb.Transient {
			// Pipelines are single-use, so a transient builder's whole
			// life may be ladder: climb steeply to cut the abandoned
			// warm-up chunks (they are recycled, never retained).
			n = 8 * cap(bb.arena)
		}
		if n < minArenaRows*bb.arity {
			n = minArenaRows * bb.arity
		}
		limit := maxArenaValues
		if full := DefaultBatchSize * bb.arity; bb.Transient && full > limit {
			// A transient chunk must eventually hold a whole batch, or
			// Reset (which recycles only the current chunk) would leak a
			// chunk per batch for wide rows. Growth still starts small —
			// short streams never reach this size.
			limit = full
		}
		if n > limit {
			n = limit
		}
		if n < bb.arity {
			n = bb.arity
		}
		bb.arena = make([]Value, 0, n)
	}
	start := len(bb.arena)
	bb.arena = bb.arena[:start+bb.arity]
	row := Tuple(bb.arena[start : start+bb.arity : start+bb.arity])
	bb.rows = append(bb.rows, row)
	return row
}

// Concat appends the concatenation of a and b as one row and returns it.
func (bb *BatchBuilder) Concat(a, b Tuple) Tuple {
	row := bb.Row()
	copy(row, a)
	copy(row[len(a):], b)
	return row
}

// DropLast discards the most recently appended row (a residual predicate
// rejected it after assembly).
func (bb *BatchBuilder) DropLast() {
	bb.rows = bb.rows[:len(bb.rows)-1]
	bb.arena = bb.arena[:len(bb.arena)-bb.arity]
}

// Batch returns the accumulated batch. The builder must not be Reset
// while the consumer still holds the batch.
func (bb *BatchBuilder) Batch() Batch { return Batch{Rows: bb.rows} }

// MarkTransient tells an iterator that its consumer will not use any row
// of a batch after the next Next or Close call on it, so row-building
// operators may recycle their output arenas between batches instead of
// keeping every row alive. It is a planner-side promise: calling it on an
// iterator whose rows ARE retained (a Collect, a breaker's build side)
// corrupts results. Pass-through wrappers (counters, filters) forward the
// mark to the operator that actually builds rows — their own output IS
// the child's; iterators that don't build rows ignore it. Must be called
// before Open.
func MarkTransient(it Iterator) {
	for {
		switch x := it.(type) {
		case *CountedIter:
			it = x.child
		case *FilterIter:
			it = x.child
		case *HashJoinIter:
			x.TransientOutput = true
			return
		case *NestedLoopIter:
			x.TransientOutput = true
			return
		case *MergeJoinIter:
			x.TransientOutput = true
			return
		case *ParallelHashJoinIter:
			// Deliberately unmarked: its batches are produced
			// asynchronously by worker pipelines and handed across
			// channels, so no consumer promise can make arena recycling
			// safe. The mark is dropped.
			return
		case *DeferredIter:
			x.transient = true
			return
		default:
			return
		}
	}
}

// Cursor adapts a batch Iterator back to tuple-at-a-time consumption for
// callers that genuinely want single rows (client cursors, tests). It
// serves the rows of each batch in order and pulls the next batch only
// when the current one is drained — it never waits to "fill up", so
// row-by-row streaming sources keep their latency profile.
type Cursor struct {
	it  Iterator
	b   Batch
	pos int
}

// NewCursor wraps it. The iterator must already be open; Close remains
// the caller's job.
func NewCursor(it Iterator) *Cursor { return &Cursor{it: checkedOpened(it)} }

// Next returns the next tuple, or ok=false when the stream is done.
func (c *Cursor) Next() (Tuple, bool, error) {
	if c.pos >= len(c.b.Rows) {
		b, err := c.it.Next(DefaultBatchSize)
		if err != nil || b.Empty() {
			return nil, false, err
		}
		c.b, c.pos = b, 0
	}
	t := c.b.Rows[c.pos]
	c.pos++
	return t, true, nil
}
