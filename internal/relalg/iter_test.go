package relalg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/sqlparse"
)

// mustExpr parses a standalone expression by wrapping it in a SELECT.
func mustExpr(s string) sqlparse.Expr {
	sel := sqlparse.MustParse("SELECT 1 FROM d WHERE " + s).(*sqlparse.Select)
	return sel.Where
}

// countingScan wraps a scan and counts how many tuples consumers pull
// and whether it was opened — the instrument for early-termination and
// laziness tests.
type countingScan struct {
	*ScanIter
	pulls  int
	opened bool
}

func newCountingScan(rel *Relation) *countingScan {
	return &countingScan{ScanIter: NewScan(rel)}
}

func (c *countingScan) Open(ctx context.Context) error {
	c.opened = true
	return c.ScanIter.Open(ctx)
}

func (c *countingScan) Next() (Tuple, bool, error) {
	t, ok, err := c.ScanIter.Next()
	if ok {
		c.pulls++
	}
	return t, ok, err
}

// randomRelation builds a deterministic pseudo-random relation of n rows
// over (k number, s string, v number), with key collisions so joins,
// distinct and grouping all have work to do.
func randomRelation(name string, n int, rng *rand.Rand) *Relation {
	rel := NewRelation(name, NewSchema(
		Column{Name: "k", Type: KindNumber},
		Column{Name: "s", Type: KindString},
		Column{Name: "v", Type: KindNumber},
	))
	for i := 0; i < n; i++ {
		rel.MustAdd(
			NumV(float64(rng.Intn(n/2+1))),
			StrV(fmt.Sprintf("s%d", rng.Intn(4))),
			NumV(float64(rng.Intn(100))),
		)
	}
	return rel
}

// rows serializes a relation's tuple sequence (order-sensitive).
func rows(r *Relation) []string {
	out := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t.FullKey()
	}
	return out
}

func sameRows(t *testing.T, op string, got, want *Relation) {
	t.Helper()
	g, w := rows(got), rows(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d tuples, want %d\ngot:\n%s\nwant:\n%s", op, len(g), len(w), got, want)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: tuple %d differs\ngot:\n%s\nwant:\n%s", op, i, got, want)
		}
	}
}

// TestIteratorMaterializedEquivalence is the property test of the
// tentpole refactor: on randomized inputs, every streaming operator must
// produce exactly the tuples and order of its materialized counterpart.
func TestIteratorMaterializedEquivalence(t *testing.T) {
	pred := mustExpr("v >= 30")
	joinPred := mustExpr("a.k = b.k")
	items := []ProjectItem{
		{Name: "k2", Expr: mustExpr("k * 2")},
		{Name: "s", Expr: mustExpr("s")},
	}
	orderKeys := []OrderKey{
		{Expr: mustExpr("s")},
		{Expr: mustExpr("v"), Desc: true},
	}
	aggItems := []AggItem{
		{Name: "s", Expr: mustExpr("s")},
		{Name: "total", Expr: mustExpr("SUM(v)")},
	}

	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		r := randomRelation("r", n, rng)
		a := randomRelation("x", n, rng).Qualify("a")
		b := randomRelation("y", 1+rng.Intn(40), rng).Qualify("b")

		check := func(op string, it Iterator, err error, want *Relation, wantErr error) {
			t.Helper()
			if err != nil || wantErr != nil {
				if (err == nil) != (wantErr == nil) {
					t.Fatalf("%s: iterator err %v, materialized err %v", op, err, wantErr)
				}
				return
			}
			got, err := Collect(context.Background(), it, want.Name)
			if err != nil {
				t.Fatalf("%s: %v", op, err)
			}
			sameRows(t, fmt.Sprintf("seed %d %s", seed, op), got, want)
		}

		wf, ef := Filter(r, pred)
		check("filter", NewFilter(NewScan(r), pred), nil, wf, ef)

		wp, ep := Project(r, items)
		check("project", NewProject(NewScan(r), items), nil, wp, ep)

		wnl, enl := NestedLoopJoin(a, b, joinPred)
		check("nested-loop", NewNestedLoop(NewScan(a), b, joinPred), nil, wnl, enl)

		check("cross", NewNestedLoop(NewScan(a), b, nil), nil, CrossJoin(a, b), nil)

		whj, ehj := HashJoin(a, b, []string{"a.k"}, []string{"b.k"}, nil)
		buildLeft := !(len(b.Tuples) < len(a.Tuples))
		hj, err := NewHashJoin(NewScan(a), NewScan(b), []string{"a.k"}, []string{"b.k"}, nil, buildLeft, nil)
		check("hash-join", hj, err, whj, ehj)

		// Whichever side builds, a hash join must produce the same bag.
		hjo, err := NewHashJoin(NewScan(a), NewScan(b), []string{"a.k"}, []string{"b.k"}, nil, !buildLeft, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotO, err := Collect(context.Background(), hjo, "")
		if err != nil {
			t.Fatal(err)
		}
		if !SameTuples(gotO, whj) {
			t.Fatalf("seed %d: hash join bags differ across build sides", seed)
		}

		wmj, emj := MergeJoin(a, b, []string{"a.k"}, []string{"b.k"}, nil)
		mj, err := NewMergeJoin(NewScan(a), NewScan(b), []string{"a.k"}, []string{"b.k"}, nil, nil)
		check("merge-join", mj, err, wmj, emj)

		check("distinct", NewDistinct(NewScan(r)), nil, Distinct(r), nil)

		wu, eu := Union(a.Qualify(""), b, false)
		ua, err := NewUnionAll(NewScan(a), NewScan(b))
		check("union", NewDistinct(ua), err, wu, eu)

		wua, eua := Union(a, b, true)
		ual, err := NewUnionAll(NewScan(a), NewScan(b))
		check("union-all", ual, err, wua, eua)

		ws, es := Sort(r, orderKeys)
		check("sort", NewSort(NewScan(r), orderKeys, nil), nil, ws, es)

		check("limit", NewLimit(NewScan(r), n/2), nil, Limit(r, n/2), nil)

		wg, eg := GroupBy(r, []sqlparse.Expr{mustExpr("s")}, aggItems, nil)
		check("group-by", NewGroupBy(NewScan(r), []sqlparse.Expr{mustExpr("s")}, aggItems, nil, nil), nil, wg, eg)
	}
}

// TestLimitStopsPulling proves the early-exit property at the operator
// level: LIMIT n pulls exactly n tuples from its source, regardless of
// source size.
func TestLimitStopsPulling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := newCountingScan(randomRelation("big", 5000, rng))
	out, err := Collect(context.Background(), NewLimit(src, 7), "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 7 {
		t.Fatalf("limit returned %d tuples", out.Len())
	}
	if src.pulls != 7 {
		t.Errorf("source pulls = %d, want exactly 7", src.pulls)
	}
}

// TestLimitThroughPipelineStopsPulling: early exit survives interposed
// streaming operators (filter, project, distinct).
func TestLimitThroughPipelineStopsPulling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := newCountingScan(randomRelation("big", 5000, rng))
	pipeline := NewLimit(
		NewDistinct(NewProject(
			NewFilter(src, mustExpr("v >= 10")),
			[]ProjectItem{{Name: "s", Expr: mustExpr("s")}},
		)), 2)
	out, err := Collect(context.Background(), pipeline, "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("got %d tuples", out.Len())
	}
	// 4 distinct s-values over thousands of rows: finding 2 must touch
	// only a handful of source tuples.
	if src.pulls > 100 {
		t.Errorf("source pulls = %d; early exit failed to propagate", src.pulls)
	}
}

// TestUnionOpensLazily: a union never opens children beyond the ones it
// needed, so an early exit skips later inputs entirely.
func TestUnionOpensLazily(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	first := newCountingScan(randomRelation("first", 10, rng))
	second := newCountingScan(randomRelation("second", 10, rng))
	u, err := NewUnionAll(first, second)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(context.Background(), NewLimit(u, 5), "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("got %d tuples", out.Len())
	}
	if !first.opened || first.pulls != 5 {
		t.Errorf("first child: opened=%v pulls=%d, want opened with 5 pulls", first.opened, first.pulls)
	}
	if second.opened {
		t.Error("second union child was opened despite the limit being satisfied by the first")
	}
}

// TestIteratorContractAfterExhaustion: Next keeps reporting done after
// the stream ends, as the documented contract requires.
func TestIteratorContractAfterExhaustion(t *testing.T) {
	rel := NewRelation("t", NewSchema(Column{Name: "n", Type: KindNumber}))
	rel.MustAdd(NumV(1))
	it := NewFilter(NewScan(rel), nil)
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it.Next(); !ok {
		t.Fatal("first Next should produce the tuple")
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := it.Next(); ok || err != nil {
			t.Fatalf("Next after exhaustion: ok=%v err=%v", ok, err)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScanCancellationMidStream: canceling the Open context makes a leaf
// report ctx.Err() from Next, even with tuples remaining — the property
// that lets a whole pipeline stop mid-stream.
func TestScanCancellationMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := NewScan(randomRelation("r", 100, rng))
	ctx, cancel := context.WithCancel(context.Background())
	pipe := NewFilter(src, nil)
	if err := pipe.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := pipe.Next(); !ok || err != nil {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	cancel()
	if _, ok, err := pipe.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel: ok=%v err=%v, want context.Canceled", ok, err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerDrainHonorsCancellation: a pipeline breaker (Sort) draining
// its child at Open stops when the context is already canceled.
func TestBreakerDrainHonorsCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := newCountingScan(randomRelation("r", 10000, rng))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	it := NewSort(src, []OrderKey{{Expr: mustExpr("v")}}, nil)
	if err := it.Open(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open on canceled ctx: err=%v, want context.Canceled", err)
	}
	if src.pulls != 0 {
		t.Errorf("breaker pulled %d tuples under a canceled context", src.pulls)
	}
}

// TestCollectPropagatesCancellation: Collect itself stops draining when
// the context dies between pulls.
func TestCollectPropagatesCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := newCountingScan(randomRelation("r", 5000, rng))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Collect(ctx, src, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("Collect on canceled ctx: err=%v", err)
	}
}

// lifecycle instruments an iterator with Open/Close accounting; a
// registry of them fails the test if any node's successful Opens are not
// matched one-for-one by Closes — the leak detector for operator
// composition (the stream-level twin lives in the planner tests).
type lifecycle struct {
	Iterator
	opened, closed int
	failNextAfter  int // inject an error after this many Next calls (>0)
	served         int
}

func (l *lifecycle) Open(ctx context.Context) error {
	err := l.Iterator.Open(ctx)
	if err == nil {
		l.opened++
	}
	return err
}

func (l *lifecycle) Next() (Tuple, bool, error) {
	if l.failNextAfter > 0 && l.served >= l.failNextAfter {
		return nil, false, fmt.Errorf("lifecycle: injected failure after %d tuples", l.served)
	}
	t, ok, err := l.Iterator.Next()
	if ok {
		l.served++
	}
	return t, ok, err
}

func (l *lifecycle) Close() error {
	l.closed++
	return l.Iterator.Close()
}

type lifecycleRegistry []*lifecycle

func (r *lifecycleRegistry) track(it Iterator, failNextAfter int) Iterator {
	l := &lifecycle{Iterator: it, failNextAfter: failNextAfter}
	*r = append(*r, l)
	return l
}

func (r lifecycleRegistry) assertBalanced(t *testing.T) {
	t.Helper()
	for i, l := range r {
		if l.opened != l.closed {
			t.Errorf("iterator %d: %d successful Opens, %d Closes", i, l.opened, l.closed)
		}
		if l.opened > 1 {
			t.Errorf("iterator %d: opened %d times (single-use contract)", i, l.opened)
		}
	}
}

// TestIteratorLifecycleBalanced: across full drains, early exits and
// injected mid-stream failures, every node whose Open succeeded is
// closed exactly once.
func TestIteratorLifecycleBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	build := func(reg *lifecycleRegistry, failAfter int) Iterator {
		a := randomRelation("x", 30, rng).Qualify("a")
		b := randomRelation("y", 20, rng).Qualify("b")
		left := reg.track(NewScan(a), failAfter)
		right := reg.track(NewScan(b), 0)
		hj, err := NewHashJoin(left, right, []string{"a.k"}, []string{"b.k"}, nil, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		sorted := reg.track(NewSort(reg.track(hj, 0), []OrderKey{{Expr: mustExpr("a.v")}}, nil), 0)
		items := []ProjectItem{{Name: "k", Expr: mustExpr("a.k")}}
		u, err := NewUnionAll(
			reg.track(NewProject(sorted, items), 0),
			reg.track(NewProject(reg.track(NewScan(a), 0), items), 0))
		if err != nil {
			t.Fatal(err)
		}
		return reg.track(u, 0)
	}

	t.Run("full drain", func(t *testing.T) {
		var reg lifecycleRegistry
		if _, err := Collect(context.Background(), build(&reg, 0), ""); err != nil {
			t.Fatal(err)
		}
		reg.assertBalanced(t)
	})
	t.Run("early exit", func(t *testing.T) {
		var reg lifecycleRegistry
		if _, err := Collect(context.Background(), NewLimit(build(&reg, 0), 2), ""); err != nil {
			t.Fatal(err)
		}
		reg.assertBalanced(t)
	})
	t.Run("mid-stream failure", func(t *testing.T) {
		var reg lifecycleRegistry
		if _, err := Collect(context.Background(), build(&reg, 5), ""); err == nil {
			t.Fatal("expected injected failure")
		}
		reg.assertBalanced(t)
	})
	t.Run("canceled context", func(t *testing.T) {
		var reg lifecycleRegistry
		it := build(&reg, 0)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Collect(ctx, it, ""); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
		reg.assertBalanced(t)
	})
}

// TestCountedIter: the EXPLAIN ANALYZE counter sees exactly the tuples
// the consumer pulls, and an early exit stops the count with it.
func TestCountedIter(t *testing.T) {
	rel := NewRelation("d", NewSchema(Column{Name: "n", Type: KindNumber}))
	for i := 0; i < 10; i++ {
		rel.Tuples = append(rel.Tuples, Tuple{NumV(float64(i))})
	}
	var n atomic.Int64
	got, err := Collect(context.Background(), NewCounted(NewScan(rel), &n), "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 || n.Load() != 10 {
		t.Errorf("rows = %d, counted = %d, want 10", got.Len(), n.Load())
	}
	n.Store(0)
	lim, err := Collect(context.Background(), NewLimit(NewCounted(NewScan(rel), &n), 3), "")
	if err != nil {
		t.Fatal(err)
	}
	if lim.Len() != 3 || n.Load() != 3 {
		t.Errorf("limited rows = %d, counted = %d, want 3", lim.Len(), n.Load())
	}
}
