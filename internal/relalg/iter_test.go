package relalg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/sqlparse"
)

// mustExpr parses a standalone expression by wrapping it in a SELECT.
func mustExpr(s string) sqlparse.Expr {
	sel := sqlparse.MustParse("SELECT 1 FROM d WHERE " + s).(*sqlparse.Select)
	return sel.Where
}

// next1 pulls a single tuple through the batch contract (its degenerate
// one-tuple form) — the shim for tests asserting per-row behavior.
func next1(it Iterator) (Tuple, bool, error) {
	b, err := it.Next(1)
	if err != nil || b.Empty() {
		return nil, false, err
	}
	return b.Rows[0], true, nil
}

// countingScan wraps a scan and counts how many tuples consumers pull
// and whether it was opened — the instrument for early-termination and
// laziness tests.
type countingScan struct {
	*ScanIter
	pulls  int
	opened bool
}

func newCountingScan(rel *Relation) *countingScan {
	return &countingScan{ScanIter: NewScan(rel)}
}

func (c *countingScan) Open(ctx context.Context) error {
	c.opened = true
	return c.ScanIter.Open(ctx)
}

func (c *countingScan) Next(max int) (Batch, error) {
	b, err := c.ScanIter.Next(max)
	c.pulls += len(b.Rows)
	return b, err
}

// raggedScan serves a relation in batches whose sizes cycle through a
// fixed pattern (clamped to the consumer's max and the rows remaining),
// so the final batch is ragged and operators see uneven block shapes —
// the adversarial leaf for batch-contract tests.
type raggedScan struct {
	*ScanIter
	sizes []int
	i     int
}

func newRaggedScan(rel *Relation, sizes []int) *raggedScan {
	return &raggedScan{ScanIter: NewScan(rel), sizes: sizes}
}

func (r *raggedScan) Next(max int) (Batch, error) {
	n := r.sizes[r.i%len(r.sizes)]
	r.i++
	if max <= 0 || max > n {
		max = n
	}
	return r.ScanIter.Next(max)
}

// oversizeScan violates the contract by returning more rows than max —
// the adversarial child for LIMIT's defensive truncation.
type oversizeScan struct {
	*ScanIter
}

func (o *oversizeScan) Next(max int) (Batch, error) {
	return o.ScanIter.Next(max * 3)
}

// randomRelation builds a deterministic pseudo-random relation of n rows
// over (k number, s string, v number), with key collisions so joins,
// distinct and grouping all have work to do.
func randomRelation(name string, n int, rng *rand.Rand) *Relation {
	rel := NewRelation(name, NewSchema(
		Column{Name: "k", Type: KindNumber},
		Column{Name: "s", Type: KindString},
		Column{Name: "v", Type: KindNumber},
	))
	for i := 0; i < n; i++ {
		rel.MustAdd(
			NumV(float64(rng.Intn(n/2+1))),
			StrV(fmt.Sprintf("s%d", rng.Intn(4))),
			NumV(float64(rng.Intn(100))),
		)
	}
	return rel
}

// rows serializes a relation's tuple sequence (order-sensitive).
func rows(r *Relation) []string {
	out := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = t.FullKey()
	}
	return out
}

func sameRows(t *testing.T, op string, got, want *Relation) {
	t.Helper()
	g, w := rows(got), rows(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d tuples, want %d\ngot:\n%s\nwant:\n%s", op, len(g), len(w), got, want)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: tuple %d differs\ngot:\n%s\nwant:\n%s", op, i, got, want)
		}
	}
}

// TestIteratorMaterializedEquivalence is the property test of the
// tentpole refactor: on randomized inputs, every streaming operator must
// produce exactly the tuples and order of its materialized counterpart —
// both over plain scans and over ragged batch shapes.
func TestIteratorMaterializedEquivalence(t *testing.T) {
	pred := mustExpr("v >= 30")
	joinPred := mustExpr("a.k = b.k")
	items := []ProjectItem{
		{Name: "k2", Expr: mustExpr("k * 2")},
		{Name: "s", Expr: mustExpr("s")},
	}
	orderKeys := []OrderKey{
		{Expr: mustExpr("s")},
		{Expr: mustExpr("v"), Desc: true},
	}
	aggItems := []AggItem{
		{Name: "s", Expr: mustExpr("s")},
		{Name: "total", Expr: mustExpr("SUM(v)")},
	}
	ragged := []int{3, 1, 7, 2}

	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		r := randomRelation("r", n, rng)
		a := randomRelation("x", n, rng).Qualify("a")
		b := randomRelation("y", 1+rng.Intn(40), rng).Qualify("b")

		check := func(op string, it Iterator, err error, want *Relation, wantErr error) {
			t.Helper()
			if err != nil || wantErr != nil {
				if (err == nil) != (wantErr == nil) {
					t.Fatalf("%s: iterator err %v, materialized err %v", op, err, wantErr)
				}
				return
			}
			got, err := Collect(context.Background(), it, want.Name)
			if err != nil {
				t.Fatalf("%s: %v", op, err)
			}
			sameRows(t, fmt.Sprintf("seed %d %s", seed, op), got, want)
		}

		wf, ef := Filter(r, pred)
		check("filter", NewFilter(NewScan(r), pred), nil, wf, ef)
		check("filter-ragged", NewFilter(newRaggedScan(r, ragged), pred), nil, wf, ef)

		wp, ep := Project(r, items)
		check("project", NewProject(NewScan(r), items), nil, wp, ep)
		check("project-ragged", NewProject(newRaggedScan(r, ragged), items), nil, wp, ep)

		wnl, enl := NestedLoopJoin(a, b, joinPred)
		check("nested-loop", NewNestedLoop(NewScan(a), b, joinPred), nil, wnl, enl)
		check("nested-loop-ragged", NewNestedLoop(newRaggedScan(a, ragged), b, joinPred), nil, wnl, enl)

		check("cross", NewNestedLoop(NewScan(a), b, nil), nil, CrossJoin(a, b), nil)

		whj, ehj := HashJoin(a, b, []string{"a.k"}, []string{"b.k"}, nil)
		buildLeft := !(len(b.Tuples) < len(a.Tuples))
		hj, err := NewHashJoin(NewScan(a), NewScan(b), []string{"a.k"}, []string{"b.k"}, nil, buildLeft, nil)
		check("hash-join", hj, err, whj, ehj)
		hjr, err := NewHashJoin(newRaggedScan(a, ragged), newRaggedScan(b, ragged), []string{"a.k"}, []string{"b.k"}, nil, buildLeft, nil)
		check("hash-join-ragged", hjr, err, whj, ehj)

		// Whichever side builds, a hash join must produce the same bag.
		hjo, err := NewHashJoin(NewScan(a), NewScan(b), []string{"a.k"}, []string{"b.k"}, nil, !buildLeft, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotO, err := Collect(context.Background(), hjo, "")
		if err != nil {
			t.Fatal(err)
		}
		if !SameTuples(gotO, whj) {
			t.Fatalf("seed %d: hash join bags differ across build sides", seed)
		}

		wmj, emj := MergeJoin(a, b, []string{"a.k"}, []string{"b.k"}, nil)
		mj, err := NewMergeJoin(NewScan(a), NewScan(b), []string{"a.k"}, []string{"b.k"}, nil, nil)
		check("merge-join", mj, err, wmj, emj)

		check("distinct", NewDistinct(NewScan(r)), nil, Distinct(r), nil)
		check("distinct-ragged", NewDistinct(newRaggedScan(r, ragged)), nil, Distinct(r), nil)

		wu, eu := Union(a.Qualify(""), b, false)
		ua, err := NewUnionAll(NewScan(a), NewScan(b))
		check("union", NewDistinct(ua), err, wu, eu)

		wua, eua := Union(a, b, true)
		ual, err := NewUnionAll(NewScan(a), NewScan(b))
		check("union-all", ual, err, wua, eua)

		uar, err := NewUnionAll(newRaggedScan(a, ragged), newRaggedScan(b, ragged))
		check("union-all-ragged", uar, err, wua, eua)

		ws, es := Sort(r, orderKeys)
		check("sort", NewSort(NewScan(r), orderKeys, nil), nil, ws, es)

		check("limit", NewLimit(NewScan(r), n/2), nil, Limit(r, n/2), nil)
		check("limit-ragged", NewLimit(newRaggedScan(r, ragged), n/2), nil, Limit(r, n/2), nil)

		wg, eg := GroupBy(r, []sqlparse.Expr{mustExpr("s")}, aggItems, nil)
		check("group-by", NewGroupBy(NewScan(r), []sqlparse.Expr{mustExpr("s")}, aggItems, nil, nil), nil, wg, eg)
		check("group-by-ragged", NewGroupBy(newRaggedScan(r, ragged), []sqlparse.Expr{mustExpr("s")}, aggItems, nil, nil), nil, wg, eg)
	}
}

// TestLimitStopsPulling proves the early-exit property at the operator
// level: LIMIT n pulls exactly n tuples from its source, regardless of
// source size — batch demand propagation caps what the leaf serves.
func TestLimitStopsPulling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := newCountingScan(randomRelation("big", 5000, rng))
	out, err := Collect(context.Background(), NewLimit(src, 7), "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 7 {
		t.Fatalf("limit returned %d tuples", out.Len())
	}
	if src.pulls != 7 {
		t.Errorf("source pulls = %d, want exactly 7", src.pulls)
	}
}

// TestLimitMidBatch: a LIMIT landing in the middle of what a source
// would happily serve as one large batch still transfers exactly the
// limit — and keeps doing so when the source's own batch shape is
// ragged, so the boundary falls mid-batch.
func TestLimitMidBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rel := randomRelation("big", 5000, rng)
	want := Limit(rel, 700)

	src := newCountingScan(rel)
	out, err := Collect(context.Background(), NewLimit(src, 700), "")
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "limit-mid-batch", out, want)
	if src.pulls != 700 {
		t.Errorf("source pulls = %d, want exactly 700", src.pulls)
	}

	// Ragged shape: sizes don't divide 700, so the last demand lands
	// mid-cycle; the leaf must still never overshoot the remainder.
	rsrc := newCountingScan(rel)
	ragged := NewLimit(&raggedWrap{inner: rsrc, sizes: []int{256, 13, 300}}, 700)
	out, err = Collect(context.Background(), ragged, "")
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "limit-mid-batch-ragged", out, want)
	if rsrc.pulls != 700 {
		t.Errorf("ragged source pulls = %d, want exactly 700", rsrc.pulls)
	}
}

// raggedWrap imposes a ragged batch-size cycle on any iterator.
type raggedWrap struct {
	inner Iterator
	sizes []int
	i     int
}

func (r *raggedWrap) Schema() Schema                 { return r.inner.Schema() }
func (r *raggedWrap) Open(ctx context.Context) error { return r.inner.Open(ctx) }
func (r *raggedWrap) Close() error                   { return r.inner.Close() }
func (r *raggedWrap) Next(max int) (Batch, error) {
	n := r.sizes[r.i%len(r.sizes)]
	r.i++
	if max <= 0 || max > n {
		max = n
	}
	return r.inner.Next(max)
}

// TestLimitTruncatesOversizedBatch: a child that violates the contract
// by returning more rows than asked is clipped by LIMIT — the governor
// of last resort for row transfer.
func TestLimitTruncatesOversizedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := randomRelation("r", 100, rng)
	out, err := Collect(context.Background(), NewLimit(&oversizeScan{NewScan(rel)}, 5), "")
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "limit-oversize", out, Limit(rel, 5))
}

// TestFilterSkipsEmptyBatches: when whole child batches filter down to
// zero survivors, the filter must keep pulling instead of surfacing an
// empty batch — an empty batch means EOF to every consumer, and a
// premature one would silently truncate the stream.
func TestFilterSkipsEmptyBatches(t *testing.T) {
	rel := NewRelation("t", NewSchema(Column{Name: "n", Type: KindNumber}))
	for i := 0; i < 50; i++ {
		rel.MustAdd(NumV(float64(i)))
	}
	// Batches of 5: the first 8 batches (n < 40) drop entirely.
	it := NewFilter(newRaggedScan(rel, []int{5}), mustExpr("n >= 40"))
	out, err := Collect(context.Background(), it, "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("got %d tuples after empty-batch runs, want 10", out.Len())
	}
}

// TestLimitThroughPipelineStopsPulling: early exit survives interposed
// streaming operators (filter, project, distinct).
func TestLimitThroughPipelineStopsPulling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := newCountingScan(randomRelation("big", 5000, rng))
	pipeline := NewLimit(
		NewDistinct(NewProject(
			NewFilter(src, mustExpr("v >= 10")),
			[]ProjectItem{{Name: "s", Expr: mustExpr("s")}},
		)), 2)
	out, err := Collect(context.Background(), pipeline, "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("got %d tuples", out.Len())
	}
	// 4 distinct s-values over thousands of rows: finding 2 must touch
	// only a handful of source tuples.
	if src.pulls > 100 {
		t.Errorf("source pulls = %d; early exit failed to propagate", src.pulls)
	}
}

// TestUnionOpensLazily: a union never opens children beyond the ones it
// needed, so an early exit skips later inputs entirely.
func TestUnionOpensLazily(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	first := newCountingScan(randomRelation("first", 10, rng))
	second := newCountingScan(randomRelation("second", 10, rng))
	u, err := NewUnionAll(first, second)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(context.Background(), NewLimit(u, 5), "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("got %d tuples", out.Len())
	}
	if !first.opened || first.pulls != 5 {
		t.Errorf("first child: opened=%v pulls=%d, want opened with 5 pulls", first.opened, first.pulls)
	}
	if second.opened {
		t.Error("second union child was opened despite the limit being satisfied by the first")
	}
}

// TestIteratorContractAfterExhaustion: Next keeps reporting an empty
// batch after the stream ends, as the documented contract requires.
func TestIteratorContractAfterExhaustion(t *testing.T) {
	rel := NewRelation("t", NewSchema(Column{Name: "n", Type: KindNumber}))
	rel.MustAdd(NumV(1))
	it := NewFilter(NewScan(rel), nil)
	if err := it.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := next1(it); !ok {
		t.Fatal("first Next should produce the tuple")
	}
	for i := 0; i < 3; i++ {
		if b, err := it.Next(DefaultBatchSize); !b.Empty() || err != nil {
			t.Fatalf("Next after exhaustion: rows=%d err=%v", b.Len(), err)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScanCancellationMidStream: canceling the Open context makes a leaf
// report ctx.Err() from Next, even with tuples remaining — the property
// that lets a whole pipeline stop between batches. The first pull is a
// one-row batch, so the cancellation lands mid-batch from the source's
// point of view.
func TestScanCancellationMidStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := NewScan(randomRelation("r", 100, rng))
	ctx, cancel := context.WithCancel(context.Background())
	pipe := NewFilter(src, nil)
	if err := pipe.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := next1(pipe); !ok || err != nil {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	cancel()
	if b, err := pipe.Next(DefaultBatchSize); !b.Empty() || !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel: rows=%d err=%v, want context.Canceled", b.Len(), err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerDrainHonorsCancellation: a pipeline breaker (Sort) draining
// its child at Open stops when the context is already canceled.
func TestBreakerDrainHonorsCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := newCountingScan(randomRelation("r", 10000, rng))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	it := NewSort(src, []OrderKey{{Expr: mustExpr("v")}}, nil)
	if err := it.Open(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open on canceled ctx: err=%v, want context.Canceled", err)
	}
	if src.pulls != 0 {
		t.Errorf("breaker pulled %d tuples under a canceled context", src.pulls)
	}
}

// TestCollectPropagatesCancellation: Collect itself stops draining when
// the context dies between pulls.
func TestCollectPropagatesCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src := newCountingScan(randomRelation("r", 5000, rng))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Collect(ctx, src, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("Collect on canceled ctx: err=%v", err)
	}
}

// lifecycle instruments an iterator with Open/Close accounting; a
// registry of them fails the test if any node's successful Opens are not
// matched one-for-one by Closes — the leak detector for operator
// composition (the stream-level twin lives in the planner tests). A
// positive failNextAfter injects an error after exactly that many rows:
// when the boundary falls inside a batch, the allowed prefix is served
// and the error surfaces on the following call — the mid-batch failure
// shape.
type lifecycle struct {
	Iterator
	opened, closed int
	failNextAfter  int
	served         int
}

func (l *lifecycle) Open(ctx context.Context) error {
	err := l.Iterator.Open(ctx)
	if err == nil {
		l.opened++
	}
	return err
}

func (l *lifecycle) Next(max int) (Batch, error) {
	if l.failNextAfter > 0 && l.served >= l.failNextAfter {
		return Batch{}, fmt.Errorf("lifecycle: injected failure after %d tuples", l.served)
	}
	b, err := l.Iterator.Next(max)
	if l.failNextAfter > 0 && l.served+len(b.Rows) > l.failNextAfter {
		b.Rows = b.Rows[:l.failNextAfter-l.served]
	}
	l.served += len(b.Rows)
	return b, err
}

func (l *lifecycle) Close() error {
	l.closed++
	return l.Iterator.Close()
}

type lifecycleRegistry []*lifecycle

func (r *lifecycleRegistry) track(it Iterator, failNextAfter int) Iterator {
	l := &lifecycle{Iterator: it, failNextAfter: failNextAfter}
	*r = append(*r, l)
	return l
}

func (r lifecycleRegistry) assertBalanced(t *testing.T) {
	t.Helper()
	for i, l := range r {
		if l.opened != l.closed {
			t.Errorf("iterator %d: %d successful Opens, %d Closes", i, l.opened, l.closed)
		}
		if l.opened > 1 {
			t.Errorf("iterator %d: opened %d times (single-use contract)", i, l.opened)
		}
	}
}

// TestIteratorLifecycleBalanced: across full drains, early exits and
// injected mid-batch failures, every node whose Open succeeded is
// closed exactly once.
func TestIteratorLifecycleBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	build := func(reg *lifecycleRegistry, failAfter int) Iterator {
		a := randomRelation("x", 30, rng).Qualify("a")
		b := randomRelation("y", 20, rng).Qualify("b")
		left := reg.track(NewScan(a), failAfter)
		right := reg.track(NewScan(b), 0)
		hj, err := NewHashJoin(left, right, []string{"a.k"}, []string{"b.k"}, nil, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		sorted := reg.track(NewSort(reg.track(hj, 0), []OrderKey{{Expr: mustExpr("a.v")}}, nil), 0)
		items := []ProjectItem{{Name: "k", Expr: mustExpr("a.k")}}
		u, err := NewUnionAll(
			reg.track(NewProject(sorted, items), 0),
			reg.track(NewProject(reg.track(NewScan(a), 0), items), 0))
		if err != nil {
			t.Fatal(err)
		}
		return reg.track(u, 0)
	}

	t.Run("full drain", func(t *testing.T) {
		var reg lifecycleRegistry
		if _, err := Collect(context.Background(), build(&reg, 0), ""); err != nil {
			t.Fatal(err)
		}
		reg.assertBalanced(t)
	})
	t.Run("early exit", func(t *testing.T) {
		var reg lifecycleRegistry
		if _, err := Collect(context.Background(), NewLimit(build(&reg, 0), 2), ""); err != nil {
			t.Fatal(err)
		}
		reg.assertBalanced(t)
	})
	t.Run("mid-stream failure", func(t *testing.T) {
		var reg lifecycleRegistry
		if _, err := Collect(context.Background(), build(&reg, 5), ""); err == nil {
			t.Fatal("expected injected failure")
		}
		reg.assertBalanced(t)
	})
	t.Run("canceled context", func(t *testing.T) {
		var reg lifecycleRegistry
		it := build(&reg, 0)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Collect(ctx, it, ""); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
		reg.assertBalanced(t)
	})
}

// TestFlushBeforeFail: an accumulating operator whose child dies
// mid-batch delivers the rows it had already assembled before surfacing
// the error — no tuple the per-row contract would have delivered is
// lost to batching.
func TestFlushBeforeFail(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomRelation("x", 30, rng).Qualify("a")
	b := randomRelation("y", 20, rng).Qualify("b")

	// Reference: rows the join yields before the probe side's 5th row.
	failAfter := 5
	ref, err := NewHashJoin(NewScan(Limit(a, failAfter)), NewScan(b), []string{"a.k"}, []string{"b.k"}, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Collect(context.Background(), ref, "")
	if err != nil {
		t.Fatal(err)
	}

	probe := &lifecycle{Iterator: NewScan(a), failNextAfter: failAfter}
	hj, err := NewHashJoin(probe, NewScan(b), []string{"a.k"}, []string{"b.k"}, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := hj.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := NewRelation("", hj.Schema())
	var sawErr error
	for {
		batch, err := hj.Next(DefaultBatchSize)
		if err != nil {
			sawErr = err
			break
		}
		if batch.Empty() {
			break
		}
		got.Tuples = append(got.Tuples, batch.Rows...)
	}
	if sawErr == nil {
		t.Fatal("expected the injected failure to surface")
	}
	if err := hj.Close(); err != nil {
		t.Fatal(err)
	}
	sameRows(t, "flush-before-fail", got, want)
}

// TestCountedIter: the EXPLAIN ANALYZE counter sees exactly the tuples
// the consumer pulls, and an early exit stops the count with it.
func TestCountedIter(t *testing.T) {
	rel := NewRelation("d", NewSchema(Column{Name: "n", Type: KindNumber}))
	for i := 0; i < 10; i++ {
		rel.Tuples = append(rel.Tuples, Tuple{NumV(float64(i))})
	}
	var n atomic.Int64
	got, err := Collect(context.Background(), NewCounted(NewScan(rel), &n), "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 10 || n.Load() != 10 {
		t.Errorf("rows = %d, counted = %d, want 10", got.Len(), n.Load())
	}
	n.Store(0)
	lim, err := Collect(context.Background(), NewLimit(NewCounted(NewScan(rel), &n), 3), "")
	if err != nil {
		t.Fatal(err)
	}
	if lim.Len() != 3 || n.Load() != 3 {
		t.Errorf("limited rows = %d, counted = %d, want 3", lim.Len(), n.Load())
	}
}
