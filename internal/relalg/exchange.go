package relalg

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sqlparse"
)

// This file holds the intra-query parallelism ("exchange") operators:
// a hash-repartition exchange embodied in ParallelHashJoinIter (build and
// probe sides split across N worker pipelines on the join keys), and the
// partitioned cores behind SortIter.Par (parallel chunk sort + an
// order-preserving merge exchange) and GroupByIter.Par (hash-partitioned
// grouping with first-appearance order restored on merge).
//
// Determinism rule: every parallel operator produces output identical in
// content AND order to its serial counterpart, so plans never change
// results when the parallelism knob moves. The mechanisms:
//
//   - parallel hash join: probe batches are dispatched round-robin to
//     workers and their outputs re-read in the same round-robin order,
//     so rows flow in exact probe-stream order; same-key build rows all
//     land in one partition, preserving build-insertion match order.
//   - parallel sort: contiguous chunks are stable-sorted concurrently
//     and merged with ties broken by chunk index, reproducing the serial
//     stable sort exactly.
//   - parallel group-by: rows are hash-partitioned on the group key so
//     no group spans workers; the merged output is reordered by each
//     group's first-appearance row index, the serial emission order.
//
// Isolation rule: no Interner handle, KeyEncoder scratch buffer, or
// transient batch crosses a worker boundary. Each partition builds with
// a private pool; probers share that pool strictly read-only through
// KeyEncoder.LookupKey; batches handed across channels are durable
// copies (fresh builder arenas or copied row-header slices).

// FNV-1a 64-bit parameters for the partition-routing hash.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashValueInto folds one value into a partition-routing hash that is
// identical across interner pools: strings hash their raw bytes (handles
// differ pool to pool), NaN payloads are canonicalized exactly as the key
// encoding does, and NULL hashes its tag (NULL keys form real GROUP BY
// groups; hash-join routing drops NULL-keyed rows before hashing).
func hashValueInto(h uint64, v Value) uint64 {
	v.checkLive()
	switch v.K {
	case KindNumber:
		bits := math.Float64bits(v.N)
		if v.N != v.N {
			bits = math.Float64bits(math.NaN())
		}
		h = (h ^ uint64(keyTagNum)) * fnvPrime64
		for s := 56; s >= 0; s -= 8 {
			h = (h ^ (bits >> uint(s) & 0xFF)) * fnvPrime64
		}
	case KindString:
		h = (h ^ uint64(keyTagStr)) * fnvPrime64
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * fnvPrime64
		}
		// Terminator so adjacent key strings cannot alias each other.
		h = (h ^ 0xFF) * fnvPrime64
	case KindBool:
		tag := uint64(keyTagFalse)
		if v.B {
			tag = keyTagTrue
		}
		h = (h ^ tag) * fnvPrime64
	default:
		h = (h ^ uint64(keyTagNull)) * fnvPrime64
	}
	return h
}

// partitionHash hashes the values of t at cols for partition routing.
func partitionHash(t Tuple, cols []int) uint64 {
	h := fnvOffset64
	for _, ci := range cols {
		h = hashValueInto(h, t[ci])
	}
	return h
}

// hashValues is partitionHash over already-evaluated key values.
func hashValues(vals []Value) uint64 {
	h := fnvOffset64
	for _, v := range vals {
		h = hashValueInto(h, v)
	}
	return h
}

// tupleHasNullKey reports whether any key column of t is NULL (SQL
// equality: such rows can never join).
func tupleHasNullKey(t Tuple, cols []int) bool {
	for _, i := range cols {
		if t[i].IsNull() {
			return true
		}
	}
	return false
}

// phjTable is one partition's hash table: the same bucket layout as
// HashJoinIter (single string keys map raw strings to dense bucket
// indexes; other shapes use the pool-backed fixed-width encoding), built
// by exactly one worker and probed read-only afterwards.
type phjTable struct {
	in      *Interner
	stable  map[string]int
	table   map[string]int
	buckets []hjBucket
	single  bool
}

// buildPHJTable hashes one partition's build rows. Rows with NULL keys
// were dropped at routing.
func buildPHJTable(rows []Tuple, idx []int) *phjTable {
	t := &phjTable{in: NewInterner(), single: len(idx) == 1}
	if t.single {
		t.stable = make(map[string]int, len(rows))
	} else {
		t.table = make(map[string]int, len(rows))
	}
	enc := NewKeyEncoder(t.in)
	t.buckets = make([]hjBucket, 0, len(rows))
	for _, tu := range rows {
		var bi int
		var ok bool
		if t.single && tu[idx[0]].K == KindString {
			s := tu[idx[0]].S
			if bi, ok = t.stable[s]; !ok {
				bi = len(t.buckets)
				t.buckets = append(t.buckets, hjBucket{})
				t.stable[s] = bi
			}
		} else {
			if t.table == nil {
				// Single-key build with a non-string value: fall back to
				// the generic encoded table for this row.
				t.table = make(map[string]int)
			}
			k := enc.Key(tu, idx)
			if bi, ok = t.table[string(k)]; !ok {
				bi = len(t.buckets)
				t.buckets = append(t.buckets, hjBucket{})
				t.table[string(k)] = bi
			}
		}
		if b := &t.buckets[bi]; b.first == nil {
			b.first = tu
		} else {
			b.rest = append(b.rest, tu)
		}
	}
	return t
}

// lookup finds the bucket for a probe tuple's key, if any. enc must be a
// prober-private encoder over t.in; LookupKey keeps the shared pool
// frozen, so any number of workers may probe one table concurrently.
func (t *phjTable) lookup(tu Tuple, probeIdx []int, enc *KeyEncoder) (int, bool) {
	if t.single {
		if v := tu[probeIdx[0]]; v.K == KindString {
			bi, ok := t.stable[v.S]
			return bi, ok
		}
	}
	if t.table == nil {
		return 0, false
	}
	k, ok := enc.LookupKey(tu, probeIdx)
	if !ok {
		return 0, false
	}
	bi, ok := t.table[string(k)]
	return bi, ok
}

// phjChunk is one unit of worker→consumer flow: a durable row slice, a
// marker for the final chunk of one input probe batch, and an optional
// terminal error (residual evaluation failed; any partial rows were
// flushed in the preceding chunk, matching the serial flush-before-fail
// contract).
type phjChunk struct {
	rows []Tuple
	last bool
	err  error
}

// phjChanCap bounds the dispatch and output channels so a fast producer
// cannot buffer unbounded batches ahead of a slow consumer.
const phjChanCap = 2

// ParallelHashJoinIter is the hash-repartition exchange form of
// HashJoinIter: the build side is drained once, routed by key hash into
// Par partitions and hashed into Par tables concurrently (each with a
// private interner pool); probe batches are then dispatched round-robin
// to Par worker pipelines that probe the tables read-only and emit
// concatenated rows. The consumer re-reads worker outputs in the same
// round-robin order, so the output is identical in content and order to
// the serial HashJoinIter — batch boundaries may differ, row order may
// not.
//
// The probe child is driven only from the dispatch goroutine; Close
// cancels the internal context, waits for every worker to exit, and only
// then closes the child, so the single-use iterator contract holds.
type ParallelHashJoinIter struct {
	left, right Iterator
	leftIdx     []int
	rightIdx    []int
	residual    sqlparse.Expr
	buildLeft   bool
	stager      Stager
	schema      Schema
	// Par is the worker count; set before Open (values < 1 run one
	// worker). The planner only builds this operator when Par > 1.
	Par int
	// WorkerOut, when non-nil, counts the rows each worker emitted
	// (index = worker, extra slots ignored) — the per-worker breakdown
	// EXPLAIN ANALYZE renders. Set before Open; counters are atomic so
	// the observer may read them while the exchange runs.
	WorkerOut []atomic.Int64

	tables    []*phjTable
	probe     Iterator
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	outs      []chan phjChunk
	dist      *phjDist
	nextBatch int
	exhausted bool
	cur       []Tuple
	pos       int
}

// phjDist carries the dispatch goroutine's terminal error (a probe-side
// Next failure) to the consumer, which surfaces it after every
// dispatched batch's output has been served — the same position the
// serial join would surface it.
type phjDist struct {
	mu sync.Mutex
	e  error
}

func (d *phjDist) fail(err error) {
	d.mu.Lock()
	if d.e == nil {
		d.e = err
	}
	d.mu.Unlock()
}

func (d *phjDist) err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.e
}

// NewParallelHashJoin prepares a partitioned-parallel hash join of left
// and right on pairwise equal key columns, mirroring NewHashJoin's
// contract (buildLeft selects the materialized side; residual applies to
// the concatenated row; output columns are always left ++ right).
func NewParallelHashJoin(left, right Iterator, leftKeys, rightKeys []string, residual sqlparse.Expr, buildLeft bool, st Stager, par int) (*ParallelHashJoinIter, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("relalg: hash join requires matching non-empty key lists")
	}
	ls, rs := left.Schema(), right.Schema()
	li := make([]int, len(leftKeys))
	ri := make([]int, len(rightKeys))
	for i := range leftKeys {
		li[i] = ls.Index(leftKeys[i])
		ri[i] = rs.Index(rightKeys[i])
		if li[i] < 0 || ri[i] < 0 {
			return nil, fmt.Errorf("relalg: hash join key %s/%s not found", leftKeys[i], rightKeys[i])
		}
	}
	if par < 1 {
		par = 1
	}
	return &ParallelHashJoinIter{
		left: left, right: right,
		leftIdx: li, rightIdx: ri,
		residual: residual, buildLeft: buildLeft, stager: st,
		schema: ls.Concat(rs), Par: par,
	}, nil
}

// Schema implements Iterator.
func (j *ParallelHashJoinIter) Schema() Schema { return j.schema }

// Open implements Iterator: it drains the build side, partitions it into
// Par hash tables built concurrently, opens the probe child and starts
// the dispatch and worker goroutines.
func (j *ParallelHashJoinIter) Open(ctx context.Context) error {
	build, buildIdx := j.right, j.rightIdx
	if j.buildLeft {
		build, buildIdx = j.left, j.leftIdx
	}
	rel, err := Collect(ctx, build, "")
	if err != nil {
		return err
	}
	if rel, err = stage(j.stager, rel); err != nil {
		return err
	}
	par := j.Par
	if par < 1 {
		par = 1
	}
	// Route build rows by key hash; same-key rows land in one partition
	// in build order, so match order inside a bucket is preserved. SQL
	// equality: NULL keys never join, drop them here.
	parts := make([][]Tuple, par)
	for _, t := range rel.Tuples {
		if tupleHasNullKey(t, buildIdx) {
			continue
		}
		p := int(partitionHash(t, buildIdx) % uint64(par))
		parts[p] = append(parts[p], t)
	}
	j.tables = make([]*phjTable, par)
	var bwg sync.WaitGroup
	for p := 0; p < par; p++ {
		bwg.Add(1)
		go func(p int) {
			defer bwg.Done()
			j.tables[p] = buildPHJTable(parts[p], buildIdx)
		}(p)
	}
	bwg.Wait()

	j.probe = j.left
	probeIdx := j.leftIdx
	if j.buildLeft {
		j.probe, probeIdx = j.right, j.rightIdx
	}
	if err := j.probe.Open(ctx); err != nil {
		// A failed child Open cleans up after itself; never Close it.
		j.probe = nil
		return err
	}
	wctx, cancel := context.WithCancel(ctx)
	j.cancel = cancel
	ins := make([]chan []Tuple, par)
	j.outs = make([]chan phjChunk, par)
	for p := range ins {
		ins[p] = make(chan []Tuple, phjChanCap)
		j.outs[p] = make(chan phjChunk, phjChanCap)
	}
	j.dist = &phjDist{}
	for p := 0; p < par; p++ {
		j.wg.Add(1)
		go j.worker(wctx, p, ins[p], j.outs[p], probeIdx)
	}
	j.wg.Add(1)
	go j.dispatch(wctx, ins)
	j.nextBatch, j.exhausted, j.cur, j.pos = 0, false, nil, 0
	return nil
}

// dispatch pulls probe batches and hands batch k to worker k%Par. It is
// the only goroutine touching the probe child between Open and Close.
func (j *ParallelHashJoinIter) dispatch(ctx context.Context, ins []chan []Tuple) {
	defer j.wg.Done()
	// Closing the inboxes is the workers' end-of-stream signal, on both
	// the clean and the cancelled path.
	defer func() {
		for _, in := range ins {
			close(in)
		}
	}()
	k := 0
	for {
		b, err := j.probe.Next(DefaultBatchSize)
		if err != nil {
			j.dist.fail(err)
			return
		}
		if b.Empty() {
			return
		}
		// Durable copy of the row headers: the batch's Rows slice is only
		// valid until the next Next on the probe child, but the worker
		// consumes it asynchronously. The Tuples inside are durable per
		// the batch contract (the probe side is never marked transient).
		rows := append([]Tuple(nil), b.Rows...)
		select {
		case ins[k%len(ins)] <- rows:
		case <-ctx.Done():
			return
		}
		k++
	}
}

// worker probes the partition tables for each dispatched batch and emits
// the join output as chunks, ending each input batch with a last-marked
// chunk so the consumer can re-serialize batches in dispatch order.
func (j *ParallelHashJoinIter) worker(ctx context.Context, self int, in chan []Tuple, out chan phjChunk, probeIdx []int) {
	defer j.wg.Done()
	defer close(out)
	par := len(j.tables)
	// Private encoders over the shared frozen pools: scratch buffers are
	// per-worker, pools are probed read-only via LookupKey.
	encs := make([]*KeyEncoder, par)
	for p := range encs {
		encs[p] = NewKeyEncoder(j.tables[p].in)
	}
	var resFn func(Tuple) (bool, error)
	if j.residual != nil {
		// Compiled predicates keep per-instance scratch state: one per
		// worker, never shared.
		resFn = CompileBool(j.residual, j.schema)
	}
	send := func(c phjChunk) bool {
		select {
		case out <- c:
			if self < len(j.WorkerOut) && len(c.rows) > 0 {
				j.WorkerOut[self].Add(int64(len(c.rows)))
			}
			return true
		case <-ctx.Done():
			return false
		}
	}
	for rows := range in {
		// A fresh builder per chunk: its arena is never Reset again, so
		// the rows stay durable after crossing the channel.
		bb := NewBatchBuilder(len(j.schema.Columns))
		failed := false
		for _, t := range rows {
			if tupleHasNullKey(t, probeIdx) {
				continue
			}
			tp := int(partitionHash(t, probeIdx) % uint64(par))
			tbl := j.tables[tp]
			bi, ok := tbl.lookup(t, probeIdx, encs[tp])
			if !ok {
				continue
			}
			bkt := &tbl.buckets[bi]
			for mi := 0; mi <= len(bkt.rest); mi++ {
				bt := bkt.first
				if mi > 0 {
					bt = bkt.rest[mi-1]
				}
				l, r := t, bt
				if j.buildLeft {
					l, r = bt, t
				}
				row := bb.Concat(l, r)
				if resFn != nil {
					ok, err := resFn(row)
					if err != nil {
						bb.DropLast()
						// Flush the partial output, then the error, in
						// the same positions the serial join would.
						if bb.Len() > 0 {
							if !send(phjChunk{rows: bb.Batch().Rows}) {
								return
							}
						}
						send(phjChunk{err: err, last: true})
						failed = true
						break
					}
					if !ok {
						bb.DropLast()
					}
				}
				if bb.Len() >= DefaultBatchSize {
					if !send(phjChunk{rows: bb.Batch().Rows}) {
						return
					}
					bb = NewBatchBuilder(len(j.schema.Columns))
				}
			}
			if failed {
				break
			}
		}
		if failed {
			// The consumer stops at the error chunk; drain the inbox so
			// the dispatcher is never blocked on a dead worker.
			for range in {
			}
			return
		}
		if !send(phjChunk{rows: bb.Batch().Rows, last: true}) {
			return
		}
	}
}

// Next implements Iterator: it serves the workers' chunks in dispatch
// order, slicing to the consumer's max.
func (j *ParallelHashJoinIter) Next(max int) (Batch, error) {
	if max <= 0 {
		max = DefaultBatchSize
	}
	for {
		if j.pos < len(j.cur) {
			n := len(j.cur) - j.pos
			if n > max {
				n = max
			}
			rows := j.cur[j.pos : j.pos+n]
			j.pos += n
			return Batch{Rows: rows}, nil
		}
		if j.exhausted || j.outs == nil {
			return Batch{}, nil
		}
		ch, ok := <-j.outs[j.nextBatch%len(j.outs)]
		if !ok {
			// Batch nextBatch was never dispatched: the probe stream
			// ended — or failed, in which case the error surfaces here,
			// after every dispatched batch's output, exactly where the
			// serial join would surface it.
			j.exhausted = true
			return Batch{}, j.dist.err()
		}
		if ch.err != nil {
			j.exhausted = true
			return Batch{}, ch.err
		}
		if ch.last {
			j.nextBatch++
		}
		j.cur, j.pos = ch.rows, 0
	}
}

// Close implements Iterator: cancel the exchange, wait for the dispatch
// and worker goroutines to exit, then close the probe child (single-use
// iterators must never see concurrent calls).
func (j *ParallelHashJoinIter) Close() error {
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
	j.wg.Wait()
	j.tables, j.outs, j.cur, j.dist = nil, nil, nil, nil
	j.exhausted = true
	if j.probe == nil {
		return nil
	}
	err := j.probe.Close()
	j.probe = nil
	return err
}

// parallelSortRelation is the parallel form of sortRelation: the
// decorated rows are split into par contiguous chunks, each chunk
// stable-sorted concurrently with the same comparator, and the chunks
// k-way merged with ties broken by lowest chunk index — which reproduces
// the serial stable sort exactly (the order-preserving merge exchange).
func parallelSortRelation(r *Relation, keys []OrderKey, par int) (*Relation, error) {
	n := len(r.Tuples)
	if par > n {
		par = n
	}
	if par <= 1 || len(keys) == 0 {
		return sortRelation(r, keys)
	}
	type decorated struct {
		t    Tuple
		keys []Value
	}
	rows := make([]decorated, n)
	cmp := func(a, b decorated) int {
		for ki := range keys {
			c := a.keys[ki].SortKey(b.keys[ki])
			if c == 0 {
				continue
			}
			if keys[ki].Desc {
				return -c
			}
			return c
		}
		return 0
	}
	bounds := make([]int, par+1)
	for p := 0; p <= par; p++ {
		bounds[p] = n * p / par
	}
	errs := make([]error, par)
	sawNaN := make([]bool, par)
	var wg sync.WaitGroup
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := bounds[p]; i < bounds[p+1]; i++ {
				t := r.Tuples[i]
				d := decorated{t: t, keys: make([]Value, len(keys))}
				for ki, k := range keys {
					v, err := Eval(k.Expr, r.Schema, t)
					if err != nil {
						errs[p] = err
						return
					}
					if v.K == KindNumber && v.N != v.N {
						sawNaN[p] = true
					}
					d.keys[ki] = v
				}
				rows[i] = d
			}
			if sawNaN[p] {
				return
			}
			chunk := rows[bounds[p]:bounds[p+1]]
			sort.SliceStable(chunk, func(i, k int) bool { return cmp(chunk[i], chunk[k]) < 0 })
		}(p)
	}
	wg.Wait()
	// The first error in chunk order is the first error in row order:
	// each worker records the earliest failure of its own chunk.
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	for _, saw := range sawNaN {
		if saw {
			// NaN compares equal to every number (Value.Compare), so
			// SortKey is not a strict weak order and the serial sort's
			// tie placement depends on sort internals a chunk merge
			// cannot reproduce. Fall back to the serial core to keep
			// parallel output byte-identical.
			return sortRelation(r, keys)
		}
	}
	out := NewRelation(r.Name, r.Schema)
	out.Tuples = make([]Tuple, 0, n)
	pos := make([]int, par)
	for len(out.Tuples) < n {
		best := -1
		for p := 0; p < par; p++ {
			if bounds[p]+pos[p] >= bounds[p+1] {
				continue
			}
			if best < 0 || cmp(rows[bounds[p]+pos[p]], rows[bounds[best]+pos[best]]) < 0 {
				best = p
			}
		}
		out.Tuples = append(out.Tuples, rows[bounds[best]+pos[best]].t)
		pos[best]++
	}
	return out, nil
}

// groupByParallel is the parallel form of groupByInterned: rows are
// hash-partitioned on the evaluated group key so no group spans workers,
// each partition groups and aggregates with a private interner pool, and
// the merged output is reordered by each group's first-appearance row
// index — the serial emission order. Global aggregation (no keys) would
// need aggregate-state merging and stays serial.
func groupByParallel(r *Relation, keys []sqlparse.Expr, items []AggItem, having sqlparse.Expr, par int) (*Relation, error) {
	n := len(r.Tuples)
	if par > n {
		par = n
	}
	if par <= 1 || len(keys) == 0 {
		return groupByInterned(r, keys, items, having, nil)
	}

	// Phase 1: per-row routing hashes, computed over contiguous chunks.
	hashes := make([]uint64, n)
	bounds := make([]int, par+1)
	for p := 0; p <= par; p++ {
		bounds[p] = n * p / par
	}
	errs := make([]error, par)
	var wg sync.WaitGroup
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			kv := make([]Value, len(keys))
			for i := bounds[p]; i < bounds[p+1]; i++ {
				for ki, k := range keys {
					v, err := Eval(k, r.Schema, r.Tuples[i])
					if err != nil {
						errs[p] = err
						return
					}
					kv[ki] = v
				}
				hashes[i] = hashValues(kv)
			}
		}(p)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	// Phase 2: scatter rows (with their global indexes) to partitions, in
	// row order, so each partition sees its rows in global order.
	type partIn struct {
		rows []Tuple
		idx  []int
	}
	parts := make([]partIn, par)
	for i, t := range r.Tuples {
		p := int(hashes[i] % uint64(par))
		parts[p].rows = append(parts[p].rows, t)
		parts[p].idx = append(parts[p].idx, i)
	}

	// Phase 3: group per partition with private pools, tagging each group
	// with the global index of its first row.
	type outGroup struct {
		first  int
		tuples []Tuple
	}
	partGroups := make([][]*outGroup, par)
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			enc := NewKeyEncoder(nil)
			index := map[string]int{}
			var order []*outGroup
			kv := make([]Value, len(keys))
			for li, t := range parts[p].rows {
				for ki, k := range keys {
					v, err := Eval(k, r.Schema, t)
					if err != nil {
						errs[p] = err
						return
					}
					kv[ki] = v
				}
				hk := enc.FullKey(kv)
				gi, ok := index[string(hk)]
				if !ok {
					gi = len(order)
					index[string(hk)] = gi
					order = append(order, &outGroup{first: parts[p].idx[li]})
				}
				order[gi].tuples = append(order[gi].tuples, t)
			}
			partGroups[p] = order
		}(p)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	// Phase 4: merge to first-appearance order. Each partition's list is
	// already increasing in first, so a sort over the concatenation is a
	// cheap multiway merge (counts are group counts, not row counts).
	var all []*outGroup
	for _, gs := range partGroups {
		all = append(all, gs...)
	}
	sort.Slice(all, func(i, k int) bool { return all[i].first < all[k].first })

	// Phase 5: aggregate per group, in parallel over the merged list;
	// assembly stays in group order.
	cols := make([]Column, len(items))
	for i, it := range items {
		cols[i] = Column{Name: it.Name, Type: aggType(it.Expr, r.Schema)}
	}
	rowsOut := make([]Tuple, len(all))
	keep := make([]bool, len(all))
	gb := make([]int, par+1)
	for p := 0; p <= par; p++ {
		gb[p] = len(all) * p / par
	}
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for gi := gb[p]; gi < gb[p+1]; gi++ {
				g := all[gi]
				row := make(Tuple, len(items))
				for i, it := range items {
					v, err := evalAgg(it.Expr, r.Schema, g.tuples)
					if err != nil {
						errs[p] = err
						return
					}
					row[i] = v
				}
				if having != nil {
					hv, err := evalAgg(having, r.Schema, g.tuples)
					if err != nil {
						errs[p] = err
						return
					}
					if hv.K != KindBool || !hv.B {
						continue
					}
				}
				rowsOut[gi], keep[gi] = row, true
			}
		}(p)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	out := NewRelation(r.Name, Schema{Columns: cols})
	for gi := range all {
		if keep[gi] {
			out.Tuples = append(out.Tuples, rowsOut[gi])
		}
	}
	return out, nil
}
