package relalg

import "testing"

// TestValueKeyCollisionRegression pins the hash-key encoding against the
// separator-injection collision: under the old unprefixed encoding a
// string value containing "\x1f" (the separator Tuple.Key writes between
// columns) produced the same key as the adjacent values it imitated —
// ("a\x1fsb") encoded exactly like ("a","b"), and the same-arity pair
// ("a\x1fsb","c") exactly like ("a","b\x1fsc") — silently merging
// distinct rows in DISTINCT, GROUP BY, hash joins and bind-join probe
// dedup. The length-prefixed encoding keeps every sequence distinct.
func TestValueKeyCollisionRegression(t *testing.T) {
	cases := []struct{ a, b Tuple }{
		// Arity 1 vs 2: the injected value imitates two adjacent columns.
		{Tuple{StrV("a\x1fsb")}, Tuple{StrV("a"), StrV("b")}},
		// Same arity (2 vs 2): the boundary between columns shifts.
		{Tuple{StrV("a\x1fsb"), StrV("c")}, Tuple{StrV("a"), StrV("b\x1fsc")}},
		// Kind-prefix imitation: a string starting with the number tag.
		{Tuple{StrV("n1")}, Tuple{NumV(1)}},
	}
	for i, c := range cases {
		if c.a.FullKey() == c.b.FullKey() {
			t.Errorf("case %d: tuples %v and %v share key %q", i, c.a, c.b, c.a.FullKey())
		}
	}
}

// TestDistinctSurvivesSeparatorInjection drives the collision through a
// user-visible operator: DISTINCT over two genuinely different rows that
// collided under the old encoding must keep both.
func TestDistinctSurvivesSeparatorInjection(t *testing.T) {
	schema := NewSchema(Column{Name: "x", Type: KindString}, Column{Name: "y", Type: KindString})
	rel := NewRelation("inj", schema)
	rel.MustAdd(StrV("a\x1fsb"), StrV("c"))
	rel.MustAdd(StrV("a"), StrV("b\x1fsc"))
	out := Distinct(rel)
	if out.Len() != 2 {
		t.Fatalf("DISTINCT merged colliding rows: got %d tuples, want 2\n%s", out.Len(), out)
	}
	if SameTuples(rel, out) != true {
		t.Errorf("DISTINCT changed the tuple bag:\n%s\nvs\n%s", rel, out)
	}
}
