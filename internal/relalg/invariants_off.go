//go:build !invariants

package relalg

// This file is the zero-cost half of the runtime-assertion layer. The
// assertions themselves live in invariants_on.go behind `-tags
// invariants`: a CI job runs the suite with the tag (plus -race) so the
// batch-ownership, iterator-lifecycle and interner-scope contracts are
// exercised at runtime, while production builds pay nothing — every hook
// below compiles to an inlined no-op.

// InvariantsEnabled reports whether the runtime-assertion layer is
// compiled in (`go build -tags invariants`).
const InvariantsEnabled = false

// Checked returns it unchanged; with the invariants tag it wraps the
// iterator in a shim asserting the Iterator contract (lifecycle order,
// batch sizing, exhaustion stability, row arity).
func Checked(it Iterator) Iterator { return it }

// checkedOpened is Checked for an iterator that is already open
// (NewCursor's precondition).
func checkedOpened(it Iterator) Iterator { return it }

// poisonValues marks recycled transient-arena slots; no-op without the
// tag.
func poisonValues([]Value) {}

// checkLive asserts the value is not a poisoned transient-arena slot;
// no-op without the tag.
func (Value) checkLive() {}

// checkHandle asserts an interner handle belongs to the pool; no-op
// without the tag.
func checkHandle(*Interner, uint32) {}
