package relalg

import "math"

// Interner maps strings to dense uint32 handles so hash-keyed operators
// (hash join, DISTINCT, GROUP BY, bind-join feeder dedup) compare 5-byte
// fixed-width handles instead of re-encoding string bytes per tuple per
// operator.
//
// Scope: handles are meaningful only relative to one pool and only for
// that pool's lifetime. The planner creates one pool per compiled
// pipeline (a single consumer goroutine pulls a pipeline, so the pool
// needs no locking; parallel mediation branches are compiled separately
// and get separate pools). Anything that crosses a pool boundary — a
// staged spill, the session probe cache, replay-dedup keys, golden
// baselines — keeps using the collision-proof Value.Key/Tuple.FullKey
// encoding from PR 4. An interned handle must never be persisted.
type Interner struct {
	ids map[string]uint32
}

// NewInterner returns an empty pool.
func NewInterner() *Interner { return &Interner{ids: make(map[string]uint32)} }

// Intern returns the handle for s, assigning the next free one on first
// sight. Looking up an already-interned string allocates nothing.
func (in *Interner) Intern(s string) uint32 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := uint32(len(in.ids) + 1)
	in.ids[s] = id
	return id
}

// Lookup returns the handle for s if it has been interned, without
// assigning one — probe-side operators use it so a value that cannot
// possibly match (never seen by the build side's pool) does not grow
// the pool.
func (in *Interner) Lookup(s string) (uint32, bool) {
	id, ok := in.ids[s]
	return id, ok
}

// Size returns the number of distinct strings interned.
func (in *Interner) Size() int { return len(in.ids) }

// Value tags of the interned key encoding. Each tag implies a fixed
// payload width, so concatenated encodings are self-delimiting and two
// distinct value sequences can never encode to the same bytes (the
// property PR 4's length-prefixed Value.Key established, preserved here
// by construction).
const (
	keyTagNull  = 0x00 // no payload
	keyTagNum   = 0x01 // 8-byte big-endian float64 bits
	keyTagStr   = 0x02 // 4-byte big-endian interner handle
	keyTagTrue  = 0x03 // no payload
	keyTagFalse = 0x04 // no payload
)

// KeyEncoder renders tuple keys as fixed-width byte strings suitable for
// map keying inside a single operator pipeline. It shares one scratch
// buffer across calls: a returned key is valid only until the next call,
// so callers use it immediately as a map key (the m[string(buf)] lookup
// form compiles without allocating; only inserting a new key copies it).
type KeyEncoder struct {
	in  *Interner
	buf []byte
}

// NewKeyEncoder returns an encoder over the given pool (nil: a fresh
// private pool).
func NewKeyEncoder(in *Interner) *KeyEncoder {
	if in == nil {
		in = NewInterner()
	}
	return &KeyEncoder{in: in}
}

func (e *KeyEncoder) appendValue(dst []byte, v Value) []byte {
	v.checkLive()
	switch v.K {
	case KindNumber:
		bits := math.Float64bits(v.N)
		if v.N != v.N {
			// Canonicalize NaN payloads: SQL has one NaN.
			bits = math.Float64bits(math.NaN())
		}
		return append(dst, keyTagNum,
			byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
			byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
	case KindString:
		h := e.in.Intern(v.S)
		checkHandle(e.in, h)
		return append(dst, keyTagStr, byte(h>>24), byte(h>>16), byte(h>>8), byte(h))
	case KindBool:
		if v.B {
			return append(dst, keyTagTrue)
		}
		return append(dst, keyTagFalse)
	default:
		return append(dst, keyTagNull)
	}
}

// Key encodes the values of t at the given column positions. The result
// aliases the encoder's scratch buffer — valid until the next call.
func (e *KeyEncoder) Key(t Tuple, cols []int) []byte {
	b := e.buf[:0]
	for _, i := range cols {
		b = e.appendValue(b, t[i])
	}
	e.buf = b
	return b
}

// LookupKey encodes like Key but never grows the pool: a string value
// the pool has never seen cannot equal any key that was built through
// it, so the encoding is reported impossible (ok=false) instead of
// interning the string. Because it leaves the pool untouched, concurrent
// probers may call it through private encoders sharing one frozen pool —
// the read-only half of the hash-repartition exchange contract (see
// exchange.go). The returned key aliases the encoder's scratch buffer,
// same as Key.
func (e *KeyEncoder) LookupKey(t Tuple, cols []int) ([]byte, bool) {
	b := e.buf[:0]
	for _, i := range cols {
		v := t[i]
		v.checkLive()
		if v.K == KindString {
			h, ok := e.in.Lookup(v.S)
			if !ok {
				e.buf = b
				return nil, false
			}
			checkHandle(e.in, h)
			b = append(b, keyTagStr, byte(h>>24), byte(h>>16), byte(h>>8), byte(h))
			continue
		}
		// Non-string values never touch the pool.
		b = e.appendValue(b, v)
	}
	e.buf = b
	return b, true
}

// FullKey encodes every value of t. Same aliasing rule as Key.
func (e *KeyEncoder) FullKey(t Tuple) []byte {
	b := e.buf[:0]
	for _, v := range t {
		b = e.appendValue(b, v)
	}
	e.buf = b
	return b
}

// ValueKey encodes a single value. Same aliasing rule as Key.
func (e *KeyEncoder) ValueKey(v Value) []byte {
	b := e.appendValue(e.buf[:0], v)
	e.buf = b
	return b
}

// Handle interns s in the encoder's pool and returns its handle.
func (e *KeyEncoder) Handle(s string) uint32 { return e.in.Intern(s) }

// LookupHandle returns s's handle without interning it (see
// Interner.Lookup).
func (e *KeyEncoder) LookupHandle(s string) (uint32, bool) { return e.in.Lookup(s) }
