package relalg

import (
	"context"
	"sort"

	"repro/internal/sqlparse"
)

// The materialized operators in this file are thin wrappers over the
// streaming iterators of iterops.go: each builds a small iterator tree
// over its input relation(s) and drains it with Collect. Sort and GroupBy
// go the other way — they are inherently pipeline breakers, so the
// materialized cores live here (and in agg.go) and SortIter/GroupByIter
// wrap them.

// Filter returns the tuples of r satisfying pred.
func Filter(r *Relation, pred sqlparse.Expr) (*Relation, error) {
	if pred == nil {
		return r, nil
	}
	//lint:allow ctxflow materialized op over in-memory relations: the drain does no remote work, nothing to cancel
	return Collect(context.Background(), NewFilter(NewScan(r), pred), r.Name)
}

// ProjectItem names one output column computed by an expression.
type ProjectItem struct {
	Name string
	Expr sqlparse.Expr
}

// Project computes one output column per item.
func Project(r *Relation, items []ProjectItem) (*Relation, error) {
	//lint:allow ctxflow materialized op over in-memory relations: the drain does no remote work, nothing to cancel
	return Collect(context.Background(), NewProject(NewScan(r), items), r.Name)
}

// CrossJoin is the Cartesian product; schemas are concatenated.
func CrossJoin(a, b *Relation) *Relation {
	out, err := NestedLoopJoin(a, b, nil)
	if err != nil {
		// Unreachable: a nil predicate never evaluates an expression.
		panic(err)
	}
	return out
}

// NestedLoopJoin joins a and b keeping concatenated rows where pred holds.
// A nil pred degenerates to CrossJoin.
func NestedLoopJoin(a, b *Relation, pred sqlparse.Expr) (*Relation, error) {
	//lint:allow ctxflow materialized op over in-memory relations: the drain does no remote work, nothing to cancel
	return Collect(context.Background(), NewNestedLoop(NewScan(a), b, pred), "")
}

// HashJoin equi-joins a and b on pairwise key columns (named in each
// side's schema), then applies the residual predicate if non-nil. The
// hash table is built over the smaller input; output order follows the
// larger (probe) side.
func HashJoin(a, b *Relation, aKeys, bKeys []string, residual sqlparse.Expr) (*Relation, error) {
	buildLeft := !(len(b.Tuples) < len(a.Tuples))
	it, err := NewHashJoin(NewScan(a), NewScan(b), aKeys, bKeys, residual, buildLeft, nil)
	if err != nil {
		return nil, err
	}
	//lint:allow ctxflow materialized op over in-memory relations: the drain does no remote work, nothing to cancel
	return Collect(context.Background(), it, "")
}

// Distinct removes duplicate tuples, keeping first occurrences in order.
func Distinct(r *Relation) *Relation {
	//lint:allow ctxflow materialized op over in-memory relations: the drain does no remote work, nothing to cancel
	out, err := Collect(context.Background(), NewDistinct(NewScan(r)), r.Name)
	if err != nil {
		// Unreachable: deduplication evaluates no expressions.
		panic(err)
	}
	return out
}

// Union concatenates two relations (UNION ALL when all is true, set UNION
// otherwise). Schemas must have equal arity; column names are taken from a.
func Union(a, b *Relation, all bool) (*Relation, error) {
	var it Iterator
	it, err := NewUnionAll(NewScan(a), NewScan(b))
	if err != nil {
		return nil, err
	}
	if !all {
		it = NewDistinct(it)
	}
	//lint:allow ctxflow materialized op over in-memory relations: the drain does no remote work, nothing to cancel
	return Collect(context.Background(), it, a.Name)
}

// OrderKey is one sort key for Sort.
type OrderKey struct {
	Expr sqlparse.Expr
	Desc bool
}

// Sort orders tuples by the given keys (stable). It is the materialized
// sort core; SortIter streams over its result.
func Sort(r *Relation, keys []OrderKey) (*Relation, error) {
	return sortRelation(r, keys)
}

func sortRelation(r *Relation, keys []OrderKey) (*Relation, error) {
	type decorated struct {
		t    Tuple
		keys []Value
	}
	rows := make([]decorated, len(r.Tuples))
	for i, t := range r.Tuples {
		d := decorated{t: t, keys: make([]Value, len(keys))}
		for ki, k := range keys {
			v, err := Eval(k.Expr, r.Schema, t)
			if err != nil {
				return nil, err
			}
			d.keys[ki] = v
		}
		rows[i] = d
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for ki := range keys {
			c := rows[i].keys[ki].SortKey(rows[j].keys[ki])
			if c == 0 {
				continue
			}
			if keys[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := NewRelation(r.Name, r.Schema)
	out.Tuples = make([]Tuple, len(rows))
	for i, d := range rows {
		out.Tuples[i] = d.t
	}
	return out, nil
}

// sortTuplesByKeyCols returns a stably sorted copy of tuples ordered by
// the values at the given column positions (merge-join run ordering).
func sortTuplesByKeyCols(tuples []Tuple, idx []int) []Tuple {
	out := append([]Tuple(nil), tuples...)
	sort.SliceStable(out, func(i, j int) bool {
		for _, k := range idx {
			if c := out[i][k].SortKey(out[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// Limit keeps the first n tuples (n < 0 keeps all).
func Limit(r *Relation, n int) *Relation {
	if n < 0 || n >= len(r.Tuples) {
		return r
	}
	//lint:allow ctxflow materialized op over in-memory relations: the drain does no remote work, nothing to cancel
	out, err := Collect(context.Background(), NewLimit(NewScan(r), n), r.Name)
	if err != nil {
		// Unreachable: limiting evaluates no expressions.
		panic(err)
	}
	return out
}
