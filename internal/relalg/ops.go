package relalg

import (
	"fmt"
	"sort"

	"repro/internal/sqlparse"
)

// Filter returns the tuples of r satisfying pred.
func Filter(r *Relation, pred sqlparse.Expr) (*Relation, error) {
	if pred == nil {
		return r, nil
	}
	out := NewRelation(r.Name, r.Schema)
	for _, t := range r.Tuples {
		ok, err := EvalBool(pred, r.Schema, t)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// ProjectItem names one output column computed by an expression.
type ProjectItem struct {
	Name string
	Expr sqlparse.Expr
}

// Project computes one output column per item.
func Project(r *Relation, items []ProjectItem) (*Relation, error) {
	cols := make([]Column, len(items))
	for i, it := range items {
		cols[i] = Column{Name: it.Name, Type: InferType(it.Expr, r.Schema)}
	}
	out := NewRelation(r.Name, Schema{Columns: cols})
	for _, t := range r.Tuples {
		row := make(Tuple, len(items))
		for i, it := range items {
			v, err := Eval(it.Expr, r.Schema, t)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// CrossJoin is the Cartesian product; schemas are concatenated.
func CrossJoin(a, b *Relation) *Relation {
	out := NewRelation("", a.Schema.Concat(b.Schema))
	for _, ta := range a.Tuples {
		for _, tb := range b.Tuples {
			row := make(Tuple, 0, len(ta)+len(tb))
			row = append(row, ta...)
			row = append(row, tb...)
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out
}

// NestedLoopJoin joins a and b keeping concatenated rows where pred holds.
// A nil pred degenerates to CrossJoin.
func NestedLoopJoin(a, b *Relation, pred sqlparse.Expr) (*Relation, error) {
	schema := a.Schema.Concat(b.Schema)
	out := NewRelation("", schema)
	row := make(Tuple, len(a.Schema.Columns)+len(b.Schema.Columns))
	for _, ta := range a.Tuples {
		copy(row, ta)
		for _, tb := range b.Tuples {
			copy(row[len(ta):], tb)
			keep := true
			if pred != nil {
				ok, err := EvalBool(pred, schema, row)
				if err != nil {
					return nil, err
				}
				keep = ok
			}
			if keep {
				out.Tuples = append(out.Tuples, row.Clone())
			}
		}
	}
	return out, nil
}

// HashJoin equi-joins a and b on pairwise key columns (named in each
// side's schema), then applies the residual predicate if non-nil.
func HashJoin(a, b *Relation, aKeys, bKeys []string, residual sqlparse.Expr) (*Relation, error) {
	if len(aKeys) != len(bKeys) || len(aKeys) == 0 {
		return nil, fmt.Errorf("relalg: hash join requires matching non-empty key lists")
	}
	aIdx := make([]int, len(aKeys))
	bIdx := make([]int, len(bKeys))
	for i := range aKeys {
		aIdx[i] = a.Schema.Index(aKeys[i])
		bIdx[i] = b.Schema.Index(bKeys[i])
		if aIdx[i] < 0 || bIdx[i] < 0 {
			return nil, fmt.Errorf("relalg: hash join key %s/%s not found", aKeys[i], bKeys[i])
		}
	}
	// Build on the smaller side.
	build, probe := a, b
	buildIdx, probeIdx := aIdx, bIdx
	swapped := false
	if len(b.Tuples) < len(a.Tuples) {
		build, probe = b, a
		buildIdx, probeIdx = bIdx, aIdx
		swapped = true
	}
	table := make(map[string][]Tuple, len(build.Tuples))
	for _, t := range build.Tuples {
		// SQL equality: NULL keys never join.
		hasNull := false
		for _, i := range buildIdx {
			if t[i].IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			continue
		}
		k := t.Key(buildIdx)
		table[k] = append(table[k], t)
	}
	schema := a.Schema.Concat(b.Schema)
	out := NewRelation("", schema)
	for _, pt := range probe.Tuples {
		for _, bt := range table[pt.Key(probeIdx)] {
			var ta, tb Tuple
			if swapped {
				ta, tb = pt, bt
			} else {
				ta, tb = bt, pt
			}
			row := make(Tuple, 0, len(ta)+len(tb))
			row = append(row, ta...)
			row = append(row, tb...)
			keep := true
			if residual != nil {
				ok, err := EvalBool(residual, schema, row)
				if err != nil {
					return nil, err
				}
				keep = ok
			}
			if keep {
				out.Tuples = append(out.Tuples, row)
			}
		}
	}
	return out, nil
}

// Distinct removes duplicate tuples, keeping first occurrences in order.
func Distinct(r *Relation) *Relation {
	out := NewRelation(r.Name, r.Schema)
	seen := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		k := t.FullKey()
		if !seen[k] {
			seen[k] = true
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Union concatenates two relations (UNION ALL when all is true, set UNION
// otherwise). Schemas must have equal arity; column names are taken from a.
func Union(a, b *Relation, all bool) (*Relation, error) {
	if len(a.Schema.Columns) != len(b.Schema.Columns) {
		return nil, fmt.Errorf("relalg: UNION arity mismatch: %d vs %d",
			len(a.Schema.Columns), len(b.Schema.Columns))
	}
	out := NewRelation(a.Name, a.Schema)
	out.Tuples = append(out.Tuples, a.Tuples...)
	out.Tuples = append(out.Tuples, b.Tuples...)
	if !all {
		out = Distinct(out)
	}
	return out, nil
}

// OrderKey is one sort key for Sort.
type OrderKey struct {
	Expr sqlparse.Expr
	Desc bool
}

// Sort orders tuples by the given keys (stable).
func Sort(r *Relation, keys []OrderKey) (*Relation, error) {
	type decorated struct {
		t    Tuple
		keys []Value
	}
	rows := make([]decorated, len(r.Tuples))
	for i, t := range r.Tuples {
		d := decorated{t: t, keys: make([]Value, len(keys))}
		for ki, k := range keys {
			v, err := Eval(k.Expr, r.Schema, t)
			if err != nil {
				return nil, err
			}
			d.keys[ki] = v
		}
		rows[i] = d
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for ki := range keys {
			c := rows[i].keys[ki].SortKey(rows[j].keys[ki])
			if c == 0 {
				continue
			}
			if keys[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := NewRelation(r.Name, r.Schema)
	out.Tuples = make([]Tuple, len(rows))
	for i, d := range rows {
		out.Tuples[i] = d.t
	}
	return out, nil
}

// Limit keeps the first n tuples (n < 0 keeps all).
func Limit(r *Relation, n int) *Relation {
	if n < 0 || n >= len(r.Tuples) {
		return r
	}
	out := NewRelation(r.Name, r.Schema)
	out.Tuples = append(out.Tuples, r.Tuples[:n]...)
	return out
}
