package relalg

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation. Names may be plain
// ("cname") in base relations or qualified ("rl.cname") in intermediate
// results of the executor.
type Column struct {
	Name string
	Type Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from name:type pairs.
func NewSchema(cols ...Column) Schema { return Schema{Columns: cols} }

// Index returns the position of the named column, or -1. Lookup is exact
// first; if the name is unqualified and exactly one qualified column has
// that suffix, that column matches (so `cname` finds `rl.cname` in a
// single-table context).
func (s Schema) Index(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	if !strings.Contains(name, ".") {
		found := -1
		for i, c := range s.Columns {
			if strings.HasSuffix(c.Name, "."+name) {
				if found >= 0 {
					return -1 // ambiguous
				}
				found = i
			}
		}
		return found
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Qualify returns a copy of the schema with every unqualified column name
// prefixed by binding.
func (s Schema) Qualify(binding string) Schema {
	cols := make([]Column, len(s.Columns))
	for i, c := range s.Columns {
		name := c.Name
		if !strings.Contains(name, ".") {
			name = binding + "." + name
		}
		cols[i] = Column{Name: name, Type: c.Type}
	}
	return Schema{Columns: cols}
}

// Concat appends another schema's columns.
func (s Schema) Concat(o Schema) Schema {
	cols := make([]Column, 0, len(s.Columns)+len(o.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, o.Columns...)
	return Schema{Columns: cols}
}

// Equal reports schema equality by names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}

// Tuple is one row; len(Tuple) == len(Schema.Columns).
type Tuple []Value

// Key builds a hash key over the given column positions.
func (t Tuple) Key(cols []int) string {
	var b strings.Builder
	for _, i := range cols {
		b.WriteString(t[i].Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// FullKey builds a hash key over the whole tuple.
func (t Tuple) FullKey() string {
	cols := make([]int, len(t))
	for i := range cols {
		cols[i] = i
	}
	return t.Key(cols)
}

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Relation is an in-memory table of tuples with a schema and an optional
// name.
type Relation struct {
	Name   string
	Schema Schema
	Tuples []Tuple
}

// NewRelation builds an empty relation.
func NewRelation(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Add appends a row after arity checking.
func (r *Relation) Add(t Tuple) error {
	if len(t) != len(r.Schema.Columns) {
		return fmt.Errorf("relalg: relation %s: tuple arity %d != schema arity %d",
			r.Name, len(t), len(r.Schema.Columns))
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAdd is Add that panics; for fixtures.
func (r *Relation) MustAdd(vals ...Value) {
	if err := r.Add(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// valueOverheadBytes approximates the in-memory footprint of one Value
// struct (kind + number + string header + bool, with padding).
const valueOverheadBytes = 40

// ApproxBytes estimates the resident size of the relation's tuple data:
// the fixed Value footprint per datum plus string payloads. Resource
// governors use it to budget staged intermediates; it is an estimate, not
// an exact accounting.
func (r *Relation) ApproxBytes() int64 {
	var total int64
	for _, t := range r.Tuples {
		total += int64(len(t)) * valueOverheadBytes
		for _, v := range t {
			if v.K == KindString {
				total += int64(len(v.S))
			}
		}
	}
	return total
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{Name: r.Name, Schema: Schema{Columns: append([]Column(nil), r.Schema.Columns...)}}
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// Qualify returns a copy whose columns are qualified with binding.
func (r *Relation) Qualify(binding string) *Relation {
	return &Relation{Name: r.Name, Schema: r.Schema.Qualify(binding), Tuples: r.Tuples}
}

// String renders the relation as an aligned text table, rows in current
// order.
func (r *Relation) String() string {
	names := r.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(r.Tuples))
	for ti, t := range r.Tuples {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells[ti] = row
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// SameTuples reports set equality of the two relations' tuple bags
// (duplicates counted), ignoring order. Schemas must have equal arity.
func SameTuples(a, b *Relation) bool {
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	counts := map[string]int{}
	for _, t := range a.Tuples {
		counts[t.FullKey()]++
	}
	for _, t := range b.Tuples {
		counts[t.FullKey()]--
		if counts[t.FullKey()] < 0 {
			return false
		}
	}
	return true
}
