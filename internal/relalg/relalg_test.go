package relalg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sqlparse"
)

func testRel(name string, cols string, rows ...[]Value) *Relation {
	var schema Schema
	for _, c := range strings.Split(cols, ",") {
		parts := strings.Split(strings.TrimSpace(c), ":")
		k := KindString
		if len(parts) > 1 && parts[1] == "num" {
			k = KindNumber
		}
		schema.Columns = append(schema.Columns, Column{Name: parts[0], Type: k})
	}
	r := NewRelation(name, schema)
	for _, row := range rows {
		r.MustAdd(row...)
	}
	return r
}

// figure2R1 builds the paper's relation R1 (qualified as rl).
func figure2R1() *Relation {
	return testRel("rl", "rl.cname, rl.revenue:num, rl.currency",
		[]Value{StrV("IBM"), NumV(100000000), StrV("USD")},
		[]Value{StrV("NTT"), NumV(1000000), StrV("JPY")},
	)
}

func figure2R2() *Relation {
	return testRel("r2", "r2.cname, r2.expenses:num",
		[]Value{StrV("IBM"), NumV(150000000)},
		[]Value{StrV("NTT"), NumV(5000000)},
	)
}

func expr(t *testing.T, src string) sqlparse.Expr {
	t.Helper()
	stmt, err := sqlparse.Parse("SELECT a FROM t WHERE " + src)
	if err != nil {
		t.Fatalf("bad test expression %q: %v", src, err)
	}
	return stmt.(*sqlparse.Select).Where
}

func TestValueBasics(t *testing.T) {
	if !NumV(3).Equal(NumV(3)) || NumV(3).Equal(NumV(4)) {
		t.Error("numeric equality broken")
	}
	if StrV("a").Equal(NumV(0)) {
		t.Error("cross-kind equality should be false")
	}
	if Null.Equal(Null) {
		t.Error("NULL = NULL must be false (SQL semantics)")
	}
	if c, ok := StrV("apple").Compare(StrV("banana")); !ok || c >= 0 {
		t.Error("string compare broken")
	}
	if _, ok := StrV("a").Compare(NumV(1)); ok {
		t.Error("cross-kind compare should be not-ok")
	}
	if NumV(1).Key() == StrV("1").Key() {
		t.Error("hash keys must distinguish kinds")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("3.5", KindNumber)
	if err != nil || v.N != 3.5 {
		t.Errorf("ParseValue number: %v %v", v, err)
	}
	if v, _ := ParseValue("", KindNumber); !v.IsNull() {
		t.Error("empty text should parse to NULL")
	}
	if _, err := ParseValue("abc", KindNumber); err == nil {
		t.Error("bad number accepted")
	}
	if v, err := ParseValue("TRUE", KindBool); err != nil || !v.B {
		t.Error("bool parse broken")
	}
}

func TestSchemaIndexQualified(t *testing.T) {
	s := NewSchema(Column{"rl.cname", KindString}, Column{"r2.cname", KindString}, Column{"r2.expenses", KindNumber})
	if s.Index("rl.cname") != 0 || s.Index("r2.expenses") != 2 {
		t.Error("exact lookup broken")
	}
	if s.Index("cname") != -1 {
		t.Error("ambiguous unqualified lookup should fail")
	}
	if s.Index("expenses") != 2 {
		t.Error("unique suffix lookup should succeed")
	}
}

func TestFilterPaperNaiveQuery(t *testing.T) {
	// The naive Q1 over Figure 2 data returns the empty answer — the
	// paper's motivating "incorrect" result.
	joined, err := NestedLoopJoin(figure2R1(), figure2R2(), expr(t, "rl.cname = r2.cname"))
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 2 {
		t.Fatalf("join size = %d, want 2", joined.Len())
	}
	res, err := Filter(joined, expr(t, "rl.revenue > r2.expenses"))
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "the (empty) answer returned by executing Q1 is clearly
	// not a 'correct' answer". IBM: 1e8 < 1.5e8; NTT naively 1e6 < 5e6.
	if res.Len() != 0 {
		t.Errorf("naive Q1 should return the empty answer, got:\n%s", res)
	}
}

func TestProjectComputed(t *testing.T) {
	r := figure2R1()
	out, err := Project(r, []ProjectItem{
		{Name: "cname", Expr: sqlparse.Col("rl", "cname")},
		{Name: "rev_k", Expr: sqlparse.Bin("/", sqlparse.Col("rl", "revenue"), sqlparse.Num(1000))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Columns[1].Type != KindNumber {
		t.Error("computed column type not inferred")
	}
	if out.Tuples[0][1].N != 100000 {
		t.Errorf("rev_k = %v", out.Tuples[0][1])
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	a := figure2R1()
	b := figure2R2()
	nl, err := NestedLoopJoin(a, b, expr(t, "rl.cname = r2.cname"))
	if err != nil {
		t.Fatal(err)
	}
	hj, err := HashJoin(a, b, []string{"rl.cname"}, []string{"r2.cname"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !SameTuples(nl, hj) {
		t.Errorf("hash join != nested loop:\n%s\nvs\n%s", nl, hj)
	}
}

// Property: hash join equals nested-loop join on random data.
func TestJoinEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := testRel("a", "a.k:num, a.v:num")
		b := testRel("b", "b.k:num, b.w:num")
		for i := 0; i < r.Intn(20); i++ {
			a.MustAdd(NumV(float64(r.Intn(5))), NumV(float64(r.Intn(100))))
		}
		for i := 0; i < r.Intn(20); i++ {
			b.MustAdd(NumV(float64(r.Intn(5))), NumV(float64(r.Intn(100))))
		}
		pred := sqlparse.Bin("=", sqlparse.Col("a", "k"), sqlparse.Col("b", "k"))
		nl, err := NestedLoopJoin(a, b, pred)
		if err != nil {
			return false
		}
		hj, err := HashJoin(a, b, []string{"a.k"}, []string{"b.k"}, nil)
		if err != nil {
			return false
		}
		return SameTuples(nl, hj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: selection cascade — Filter(p AND q) == Filter(p) then Filter(q).
func TestSelectionCascadeProperty(t *testing.T) {
	p := sqlparse.Bin(">", sqlparse.Col("a", "v"), sqlparse.Num(30))
	q := sqlparse.Bin("<", sqlparse.Col("a", "v"), sqlparse.Num(70))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := testRel("a", "a.v:num")
		for i := 0; i < r.Intn(40); i++ {
			a.MustAdd(NumV(float64(r.Intn(100))))
		}
		both, err := Filter(a, sqlparse.Bin("AND", p, q))
		if err != nil {
			return false
		}
		first, err := Filter(a, p)
		if err != nil {
			return false
		}
		second, err := Filter(first, q)
		if err != nil {
			return false
		}
		return SameTuples(both, second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: join is commutative up to column order.
func TestJoinCommutativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := testRel("a", "a.k:num")
		b := testRel("b", "b.k:num")
		for i := 0; i < r.Intn(15); i++ {
			a.MustAdd(NumV(float64(r.Intn(4))))
		}
		for i := 0; i < r.Intn(15); i++ {
			b.MustAdd(NumV(float64(r.Intn(4))))
		}
		pred := sqlparse.Bin("=", sqlparse.Col("a", "k"), sqlparse.Col("b", "k"))
		ab, err := NestedLoopJoin(a, b, pred)
		if err != nil {
			return false
		}
		ba, err := NestedLoopJoin(b, a, pred)
		if err != nil {
			return false
		}
		// Project both to a.k to compare modulo column order.
		pa, err := Project(ab, []ProjectItem{{Name: "k", Expr: sqlparse.Col("a", "k")}})
		if err != nil {
			return false
		}
		pb, err := Project(ba, []ProjectItem{{Name: "k", Expr: sqlparse.Col("a", "k")}})
		if err != nil {
			return false
		}
		return SameTuples(pa, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnionSetVsAll(t *testing.T) {
	a := testRel("a", "x:num", []Value{NumV(1)}, []Value{NumV(2)})
	b := testRel("b", "x:num", []Value{NumV(2)}, []Value{NumV(3)})
	all, err := Union(a, b, true)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 4 {
		t.Errorf("UNION ALL len = %d, want 4", all.Len())
	}
	set, err := Union(a, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Errorf("UNION len = %d, want 3", set.Len())
	}
	if _, err := Union(a, testRel("c", "x:num, y:num"), true); err == nil {
		t.Error("arity mismatch accepted")
	}
}

// Property: |A UNION ALL B| = |A| + |B| and |A UNION B| <= that, >= max.
func TestUnionCardinalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := testRel("a", "x:num")
		b := testRel("b", "x:num")
		for i := 0; i < r.Intn(20); i++ {
			a.MustAdd(NumV(float64(r.Intn(6))))
		}
		for i := 0; i < r.Intn(20); i++ {
			b.MustAdd(NumV(float64(r.Intn(6))))
		}
		all, err := Union(a, b, true)
		if err != nil {
			return false
		}
		set, err := Union(a, b, false)
		if err != nil {
			return false
		}
		max := a.Len()
		if b.Len() > max {
			max = b.Len()
		}
		return all.Len() == a.Len()+b.Len() && set.Len() <= all.Len() &&
			set.Len() >= Distinct(a).Len() && set.Len() >= Distinct(b).Len() && set.Len() >= 0 && max >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortAndLimit(t *testing.T) {
	r := testRel("t", "t.n, t.v:num",
		[]Value{StrV("b"), NumV(2)},
		[]Value{StrV("a"), NumV(3)},
		[]Value{StrV("c"), NumV(1)},
	)
	sorted, err := Sort(r, []OrderKey{{Expr: sqlparse.Col("t", "v"), Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Tuples[0][0].S != "a" || sorted.Tuples[2][0].S != "c" {
		t.Errorf("sort order wrong: %s", sorted)
	}
	top := Limit(sorted, 2)
	if top.Len() != 2 || top.Tuples[0][0].S != "a" {
		t.Errorf("limit wrong: %s", top)
	}
	if Limit(sorted, -1).Len() != 3 {
		t.Error("Limit(-1) should keep all")
	}
}

func TestGroupByAggregates(t *testing.T) {
	r := testRel("s", "s.grp, s.v:num",
		[]Value{StrV("x"), NumV(1)},
		[]Value{StrV("x"), NumV(3)},
		[]Value{StrV("y"), NumV(10)},
	)
	items := []AggItem{
		{Name: "grp", Expr: sqlparse.Col("s", "grp")},
		{Name: "cnt", Expr: &sqlparse.FuncCall{Name: "COUNT", Star: true}},
		{Name: "total", Expr: &sqlparse.FuncCall{Name: "SUM", Args: []sqlparse.Expr{sqlparse.Col("s", "v")}}},
		{Name: "avg", Expr: &sqlparse.FuncCall{Name: "AVG", Args: []sqlparse.Expr{sqlparse.Col("s", "v")}}},
		{Name: "mx", Expr: &sqlparse.FuncCall{Name: "MAX", Args: []sqlparse.Expr{sqlparse.Col("s", "v")}}},
	}
	out, err := GroupBy(r, []sqlparse.Expr{sqlparse.Col("s", "grp")}, items, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("groups = %d, want 2", out.Len())
	}
	x := out.Tuples[0]
	if x[0].S != "x" || x[1].N != 2 || x[2].N != 4 || x[3].N != 2 || x[4].N != 3 {
		t.Errorf("group x = %v", x)
	}
}

func TestGroupByHaving(t *testing.T) {
	r := testRel("s", "s.grp, s.v:num",
		[]Value{StrV("x"), NumV(1)},
		[]Value{StrV("x"), NumV(3)},
		[]Value{StrV("y"), NumV(10)},
	)
	items := []AggItem{{Name: "grp", Expr: sqlparse.Col("s", "grp")}}
	having := sqlparse.Bin(">", &sqlparse.FuncCall{Name: "COUNT", Star: true}, sqlparse.Num(1))
	out, err := GroupBy(r, []sqlparse.Expr{sqlparse.Col("s", "grp")}, items, having)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples[0][0].S != "x" {
		t.Errorf("having result: %s", out)
	}
}

func TestGlobalAggregateOnEmpty(t *testing.T) {
	r := testRel("s", "s.v:num")
	items := []AggItem{
		{Name: "cnt", Expr: &sqlparse.FuncCall{Name: "COUNT", Star: true}},
		{Name: "sum", Expr: &sqlparse.FuncCall{Name: "SUM", Args: []sqlparse.Expr{sqlparse.Col("s", "v")}}},
	}
	out, err := GroupBy(r, nil, items, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples[0][0].N != 0 || !out.Tuples[0][1].IsNull() {
		t.Errorf("global aggregate on empty = %s", out)
	}
}

func TestEvalNullSemantics(t *testing.T) {
	r := testRel("t", "t.a:num, t.b:num", []Value{Null, NumV(1)})
	for _, src := range []string{"t.a = t.b", "t.a <> t.b", "t.a < t.b", "t.a = t.a"} {
		ok, err := EvalBool(expr(t, src), r.Schema, r.Tuples[0])
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("%s with NULL should be false", src)
		}
	}
	ok, err := EvalBool(expr(t, "t.a IS NULL"), r.Schema, r.Tuples[0])
	if err != nil || !ok {
		t.Errorf("IS NULL failed: %v %v", ok, err)
	}
	v, err := Eval(expr(t, "t.a + t.b"), r.Schema, r.Tuples[0])
	if err != nil || !v.IsNull() {
		t.Errorf("NULL arithmetic = %v, %v; want NULL", v, err)
	}
}

func TestEvalErrors(t *testing.T) {
	r := testRel("t", "t.a:num", []Value{NumV(1)})
	if _, err := Eval(expr(t, "t.zzz = 1"), r.Schema, r.Tuples[0]); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := Eval(expr(t, "t.a / 0 > 1"), r.Schema, r.Tuples[0]); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestRelationString(t *testing.T) {
	s := figure2R1().String()
	if !strings.Contains(s, "rl.cname") || !strings.Contains(s, "NTT") {
		t.Errorf("table rendering:\n%s", s)
	}
}

func TestDistinct(t *testing.T) {
	r := testRel("t", "x:num", []Value{NumV(1)}, []Value{NumV(1)}, []Value{NumV(2)})
	if Distinct(r).Len() != 2 {
		t.Error("distinct failed")
	}
}

func TestQualify(t *testing.T) {
	r := testRel("r1", "cname, revenue:num")
	q := r.Qualify("rl")
	if q.Schema.Columns[0].Name != "rl.cname" {
		t.Errorf("qualify: %v", q.Schema.Names())
	}
	// Already-qualified names stay.
	q2 := q.Qualify("zz")
	if q2.Schema.Columns[0].Name != "rl.cname" {
		t.Errorf("requalify changed name: %v", q2.Schema.Names())
	}
}
