package relalg

import (
	"context"
	"sync/atomic"
)

// CountedIter counts the tuples that flow through it into an external
// atomic counter, adding no other behavior. The planner's EXPLAIN ANALYZE
// mode wraps pipeline stages with it to measure actual per-step and
// per-branch cardinalities; the counter is atomic because analyzed plans
// may run inside parallel mediation branches.
type CountedIter struct {
	child Iterator
	n     *atomic.Int64
}

// NewCounted wraps child so every tuple it yields increments n.
func NewCounted(child Iterator, n *atomic.Int64) *CountedIter {
	return &CountedIter{child: child, n: n}
}

// Schema implements Iterator.
func (c *CountedIter) Schema() Schema { return c.child.Schema() }

// Open implements Iterator.
func (c *CountedIter) Open(ctx context.Context) error { return c.child.Open(ctx) }

// Next implements Iterator.
func (c *CountedIter) Next(max int) (Batch, error) {
	b, err := c.child.Next(max)
	if err == nil && !b.Empty() {
		c.n.Add(int64(len(b.Rows)))
	}
	return b, err
}

// Close implements Iterator.
func (c *CountedIter) Close() error { return c.child.Close() }

// RowCountHint forwards the child's hint (counting preserves rows).
func (c *CountedIter) RowCountHint() int {
	if h, ok := c.child.(RowCountHint); ok {
		return h.RowCountHint()
	}
	return 0
}
