// Package relalg implements the relational-algebra substrate of the COIN
// prototype's multi-database access engine: typed values, tuples, schemas,
// in-memory relations, an evaluator for sqlparse expressions over rows, and
// the physical operators (selection, projection, nested-loop/hash/merge
// joins, union, distinct, sort, limit, grouping/aggregation) the local
// execution engine composes.
//
// Every operator exists in two interchangeable forms: a streaming,
// pull-based Iterator (Volcano model; see the Iterator contract in
// iterator.go) that the planner composes into pipelines with early
// termination, and a materialized function over *Relation that is a thin
// wrapper draining the corresponding iterator. Only pipeline breakers —
// Sort, GroupBy, the build side of a hash join, both sides of a merge
// join — buffer their input, and those buffers can spill through the
// Stager hook.
package relalg

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind tags a Value.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindNumber
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	}
	return "invalid"
}

// Value is one typed datum. The zero Value is NULL.
type Value struct {
	K Kind
	N float64
	S string
	B bool
}

// Null is the NULL value.
var Null = Value{}

// NumV builds a numeric value.
func NumV(v float64) Value { return Value{K: KindNumber, N: v} }

// StrV builds a string value.
func StrV(s string) Value { return Value{K: KindString, S: s} }

// BoolV builds a boolean value.
func BoolV(b bool) Value { return Value{K: KindBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// String renders v for display and CSV output.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindNumber:
		return strconv.FormatFloat(v.N, 'f', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// Equal reports SQL equality; any NULL operand yields false.
func (v Value) Equal(o Value) bool {
	v.checkLive()
	o.checkLive()
	if v.K != o.K || v.K == KindNull {
		return false
	}
	switch v.K {
	case KindNumber:
		return v.N == o.N
	case KindString:
		return v.S == o.S
	case KindBool:
		return v.B == o.B
	}
	return false
}

// Compare orders two values; ok is false when they are incomparable (type
// mismatch or NULL involved).
func (v Value) Compare(o Value) (cmp int, ok bool) {
	v.checkLive()
	o.checkLive()
	if v.K == KindNull || o.K == KindNull {
		return 0, false
	}
	if v.K != o.K {
		return 0, false
	}
	switch v.K {
	case KindNumber:
		switch {
		case v.N < o.N:
			return -1, true
		case v.N > o.N:
			return 1, true
		}
		return 0, true
	case KindString:
		return strings.Compare(v.S, o.S), true
	case KindBool:
		a, b := 0, 0
		if v.B {
			a = 1
		}
		if o.B {
			b = 1
		}
		return a - b, true
	}
	return 0, false
}

// SortKey gives a total order across kinds (NULL first), used by ORDER BY
// and DISTINCT.
func (v Value) SortKey(o Value) int {
	v.checkLive()
	o.checkLive()
	if v.K != o.K {
		return int(v.K) - int(o.K)
	}
	if c, ok := v.Compare(o); ok {
		return c
	}
	return 0
}

// Key returns a string usable as a hash key that distinguishes values of
// different kinds and contents. String payloads are length-prefixed so
// the encoding is self-delimiting: no string content (including the
// \x1f separator Tuple.Key inserts between columns) can make two
// distinct value sequences encode identically. Without the prefix,
// ("a\x1fsb","c") and ("a","b\x1fsc") collided, silently merging rows in
// DISTINCT, GROUP BY, hash joins and bind-join probe dedup.
func (v Value) Key() string {
	switch v.K {
	case KindNull:
		return "\x00"
	case KindNumber:
		return "n" + strconv.FormatFloat(v.N, 'g', -1, 64)
	case KindString:
		// One-expression concat: the compiler emits a single allocation,
		// and Itoa is allocation-free for the common short strings.
		return "s" + strconv.Itoa(len(v.S)) + ":" + v.S
	case KindBool:
		if v.B {
			return "bt"
		}
		return "bf"
	}
	return "?"
}

// ParseValue converts text into a Value of the given kind. Empty text maps
// to NULL for every kind.
func ParseValue(text string, k Kind) (Value, error) {
	if text == "" {
		return Null, nil
	}
	switch k {
	case KindNumber:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Null, fmt.Errorf("relalg: %q is not numeric", text)
		}
		return NumV(f), nil
	case KindString:
		return StrV(text), nil
	case KindBool:
		switch strings.ToUpper(text) {
		case "TRUE", "T", "1":
			return BoolV(true), nil
		case "FALSE", "F", "0":
			return BoolV(false), nil
		}
		return Null, fmt.Errorf("relalg: %q is not boolean", text)
	}
	return Null, fmt.Errorf("relalg: cannot parse into %v", k)
}
