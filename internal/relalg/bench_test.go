package relalg

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sqlparse"
)

func benchRelations(n int, seed int64) (*Relation, *Relation) {
	r := rand.New(rand.NewSource(seed))
	a := NewRelation("a", NewSchema(Column{"a.k", KindNumber}, Column{"a.v", KindNumber}))
	b := NewRelation("b", NewSchema(Column{"b.k", KindNumber}, Column{"b.w", KindNumber}))
	for i := 0; i < n; i++ {
		a.MustAdd(NumV(float64(r.Intn(n))), NumV(float64(r.Intn(1000))))
		b.MustAdd(NumV(float64(r.Intn(n))), NumV(float64(r.Intn(1000))))
	}
	return a, b
}

func BenchmarkHashJoin(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		ra, rb := benchRelations(n, 1)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := HashJoin(ra, rb, []string{"a.k"}, []string{"b.k"}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNestedLoopJoin(b *testing.B) {
	pred := sqlparse.Bin("=", sqlparse.Col("a", "k"), sqlparse.Col("b", "k"))
	for _, n := range []int{100, 1000} {
		ra, rb := benchRelations(n, 1)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NestedLoopJoin(ra, rb, pred); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFilterEval(b *testing.B) {
	ra, _ := benchRelations(10000, 1)
	pred := sqlparse.Bin(">", sqlparse.Col("a", "v"), sqlparse.Num(500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Filter(ra, pred); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByAgg(b *testing.B) {
	ra, _ := benchRelations(10000, 1)
	keys := []sqlparse.Expr{sqlparse.Col("a", "k")}
	items := []AggItem{
		{Name: "k", Expr: sqlparse.Col("a", "k")},
		{Name: "s", Expr: &sqlparse.FuncCall{Name: "SUM", Args: []sqlparse.Expr{sqlparse.Col("a", "v")}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GroupBy(ra, keys, items, nil); err != nil {
			b.Fatal(err)
		}
	}
}
