package relalg

import (
	"context"
	"fmt"

	"repro/internal/sqlparse"
)

// FilterIter streams the child tuples satisfying a predicate. When every
// row of a child batch passes, the batch is handed through untouched;
// otherwise the survivors are gathered into a reused row buffer, so the
// filter allocates nothing in steady state.
type FilterIter struct {
	child Iterator
	pred  func(Tuple) (bool, error)
	out   []Tuple
}

// NewFilterFunc filters child by an arbitrary per-tuple predicate.
func NewFilterFunc(child Iterator, pred func(Tuple) (bool, error)) *FilterIter {
	return &FilterIter{child: child, pred: pred}
}

// NewFilter filters child by a sqlparse expression evaluated against the
// child schema (SQL three-valued logic collapsed to two as in EvalBool).
// A nil expression passes everything.
func NewFilter(child Iterator, pred sqlparse.Expr) *FilterIter {
	if pred == nil {
		return &FilterIter{child: child, pred: func(Tuple) (bool, error) { return true, nil }}
	}
	return &FilterIter{child: child, pred: CompileBool(pred, child.Schema())}
}

// Schema implements Iterator.
func (f *FilterIter) Schema() Schema { return f.child.Schema() }

// Open implements Iterator.
func (f *FilterIter) Open(ctx context.Context) error { return f.child.Open(ctx) }

// Next implements Iterator.
func (f *FilterIter) Next(max int) (Batch, error) {
	for {
		b, err := f.child.Next(max)
		if err != nil || b.Empty() {
			return Batch{}, err
		}
		keep := f.out[:0]
		dropped := false
		for i, t := range b.Rows {
			ok, err := f.pred(t)
			if err != nil {
				f.out = keep
				return Batch{}, err
			}
			switch {
			case ok && dropped:
				keep = append(keep, t)
			case !ok && !dropped:
				dropped = true
				keep = append(keep, b.Rows[:i]...)
			}
		}
		if !dropped {
			return b, nil
		}
		f.out = keep
		if len(keep) > 0 {
			return Batch{Rows: keep}, nil
		}
	}
}

// Close implements Iterator.
func (f *FilterIter) Close() error { return f.child.Close() }

// ProjectIter computes one output column per item for every child tuple,
// assembling each output batch in a value arena (one allocation per
// batch, not one tuple allocation per row).
type ProjectIter struct {
	child  Iterator
	items  []ProjectItem
	in     Schema // child schema, resolved once
	schema Schema
	fns    []CompiledExpr // compiled items, one per output column
	bb     *BatchBuilder
}

// ProjectionSchema computes the output schema of projecting items over
// an input schema (types inferred per expression).
func ProjectionSchema(items []ProjectItem, in Schema) Schema {
	cols := make([]Column, len(items))
	for i, it := range items {
		cols[i] = Column{Name: it.Name, Type: InferType(it.Expr, in)}
	}
	return Schema{Columns: cols}
}

// NewProject projects child through items; output types are inferred from
// the child schema.
func NewProject(child Iterator, items []ProjectItem) *ProjectIter {
	in := child.Schema()
	return &ProjectIter{child: child, items: items, in: in, schema: ProjectionSchema(items, in)}
}

// Schema implements Iterator.
func (p *ProjectIter) Schema() Schema { return p.schema }

// Open implements Iterator.
func (p *ProjectIter) Open(ctx context.Context) error {
	p.bb = NewBatchBuilder(len(p.items))
	p.fns = make([]CompiledExpr, len(p.items))
	for i, it := range p.items {
		p.fns[i] = Compile(it.Expr, p.in)
	}
	return p.child.Open(ctx)
}

// Next implements Iterator.
func (p *ProjectIter) Next(max int) (Batch, error) {
	b, err := p.child.Next(max)
	if err != nil || b.Empty() {
		return Batch{}, err
	}
	p.bb.Reset(len(b.Rows))
	for _, t := range b.Rows {
		row := p.bb.Row()
		for i, fn := range p.fns {
			v, err := fn(t)
			if err != nil {
				return Batch{}, err
			}
			row[i] = v
		}
	}
	return p.bb.Batch(), nil
}

// Close implements Iterator.
func (p *ProjectIter) Close() error { return p.child.Close() }

// LimitIter passes through the first n tuples and then reports
// exhaustion without pulling from its child again — the early-exit
// operator that makes the streaming executor worthwhile. It propagates
// its remainder as the child's max, so the batch below it (and every
// batch down to the source leaf) never carries more rows than the limit
// still needs.
type LimitIter struct {
	child  Iterator
	n      int
	seen   int
	opened bool
}

// NewLimit keeps the first n tuples of child (n < 0 keeps all).
func NewLimit(child Iterator, n int) *LimitIter {
	return &LimitIter{child: child, n: n}
}

// Schema implements Iterator.
func (l *LimitIter) Schema() Schema { return l.child.Schema() }

// Open implements Iterator. LIMIT 0 is a complete short-circuit: the
// child is never opened, so no source is contacted and no tuple moves.
func (l *LimitIter) Open(ctx context.Context) error {
	l.seen = 0
	if l.n == 0 {
		return nil
	}
	if err := l.child.Open(ctx); err != nil {
		return err
	}
	l.opened = true
	return nil
}

// Next implements Iterator.
func (l *LimitIter) Next(max int) (Batch, error) {
	if max <= 0 {
		max = DefaultBatchSize
	}
	if l.n >= 0 {
		if rem := l.n - l.seen; rem <= 0 {
			return Batch{}, nil
		} else if max > rem {
			max = rem
		}
	}
	b, err := l.child.Next(max)
	if err != nil || b.Empty() {
		return Batch{}, err
	}
	if len(b.Rows) > max {
		b.Rows = b.Rows[:max]
	}
	l.seen += len(b.Rows)
	return b, nil
}

// Close implements Iterator.
func (l *LimitIter) Close() error {
	if !l.opened {
		return nil
	}
	l.opened = false
	return l.child.Close()
}

// DistinctIter streams the child tuples, dropping duplicates of tuples
// already emitted (first occurrence wins). It holds the set of seen keys,
// not the tuples, so it streams without being a full pipeline breaker.
// Keys are interned fixed-width encodings (see KeyEncoder): probing the
// seen-set allocates nothing; only genuinely new rows insert a key.
type DistinctIter struct {
	child Iterator
	// Intern optionally shares a pipeline-wide interner pool; set it
	// before Open (nil: the operator builds a private pool).
	Intern *Interner
	seen   map[string]struct{}
	enc    *KeyEncoder
	out    []Tuple
}

// NewDistinct deduplicates child.
func NewDistinct(child Iterator) *DistinctIter { return &DistinctIter{child: child} }

// Schema implements Iterator.
func (d *DistinctIter) Schema() Schema { return d.child.Schema() }

// Open implements Iterator.
func (d *DistinctIter) Open(ctx context.Context) error {
	d.seen = make(map[string]struct{})
	d.enc = NewKeyEncoder(d.Intern)
	return d.child.Open(ctx)
}

// Next implements Iterator.
func (d *DistinctIter) Next(max int) (Batch, error) {
	for {
		b, err := d.child.Next(max)
		if err != nil || b.Empty() {
			return Batch{}, err
		}
		keep := d.out[:0]
		dropped := false
		for i, t := range b.Rows {
			k := d.enc.FullKey(t)
			if _, dup := d.seen[string(k)]; dup {
				if !dropped {
					dropped = true
					keep = append(keep, b.Rows[:i]...)
				}
				continue
			}
			d.seen[string(k)] = struct{}{}
			if dropped {
				keep = append(keep, t)
			}
		}
		if !dropped {
			return b, nil
		}
		d.out = keep
		if len(keep) > 0 {
			return Batch{Rows: keep}, nil
		}
	}
}

// Close implements Iterator.
func (d *DistinctIter) Close() error { d.seen, d.enc = nil, nil; return d.child.Close() }

// UnionAllIter concatenates its children's streams in order, opening each
// child only when the previous one is exhausted (so with an upstream
// early exit, later children may never run at all). A child the union has
// advanced past is closed eagerly, before the next child opens: the union
// will never pull from it again, and holding it open would pin its
// resources — including any source-access admission slot its scan leaf
// still owns when an early exit (a per-arm LIMIT) stopped the arm before
// stream exhaustion, which could starve the next arm's admission against
// the same source. For set-semantics UNION, wrap it in NewDistinct.
type UnionAllIter struct {
	children []Iterator
	ctx      context.Context
	cur      int
	opened   int // children[0:opened] have been opened
	closed   int // children[0:closed] have been eagerly closed
}

// NewUnionAll concatenates children; schemas must have equal arity
// (column names are taken from the first child, as in SQL).
func NewUnionAll(children ...Iterator) (*UnionAllIter, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("relalg: union of no inputs")
	}
	arity := len(children[0].Schema().Columns)
	for _, c := range children[1:] {
		if len(c.Schema().Columns) != arity {
			return nil, fmt.Errorf("relalg: UNION arity mismatch: %d vs %d",
				arity, len(c.Schema().Columns))
		}
	}
	return &UnionAllIter{children: children}, nil
}

// Schema implements Iterator.
func (u *UnionAllIter) Schema() Schema { return u.children[0].Schema() }

// Open implements Iterator.
func (u *UnionAllIter) Open(ctx context.Context) error {
	u.ctx = ctx
	u.cur, u.opened, u.closed = 0, 0, 0
	if err := u.children[0].Open(ctx); err != nil {
		return err
	}
	u.opened = 1
	return nil
}

// Next implements Iterator.
func (u *UnionAllIter) Next(max int) (Batch, error) {
	for u.cur < len(u.children) {
		b, err := u.children[u.cur].Next(max)
		if err != nil {
			return Batch{}, err
		}
		if !b.Empty() {
			return b, nil
		}
		// Done with this child: release it before the next one opens.
		u.closed = u.cur + 1
		if err := u.children[u.cur].Close(); err != nil {
			return Batch{}, err
		}
		u.cur++
		if u.cur < len(u.children) {
			if err := u.children[u.cur].Open(u.ctx); err != nil {
				return Batch{}, err
			}
			u.opened = u.cur + 1
		}
	}
	return Batch{}, nil
}

// Close implements Iterator.
func (u *UnionAllIter) Close() error {
	var first error
	for i := u.closed; i < u.opened; i++ {
		if err := u.children[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	u.closed = u.opened
	return first
}

// NestedLoopIter joins a streaming outer side against a materialized
// inner relation, emitting concatenated rows where pred holds (nil pred:
// cross product). The outer side streams; the inner is re-scanned per
// outer tuple. Candidate rows are assembled directly in the output
// batch's arena and rolled back when the predicate rejects them, so
// allocation is O(batches of matches), not O(pairs).
type NestedLoopIter struct {
	outer  Iterator
	inner  *Relation
	pred   sqlparse.Expr
	schema Schema
	predFn func(Tuple) (bool, error) // pred compiled against schema
	// TransientOutput recycles the output arena between batches; set
	// only via MarkTransient (see its contract).
	TransientOutput bool

	ob   Batch // current outer batch
	oi   int   // next outer row within ob
	cur  Tuple // current outer tuple, nil before first
	pos  int   // next inner index
	bb   *BatchBuilder
	pend error // error to surface after a flushed partial batch
}

// NewNestedLoop joins outer against inner on pred.
func NewNestedLoop(outer Iterator, inner *Relation, pred sqlparse.Expr) *NestedLoopIter {
	return &NestedLoopIter{
		outer:  outer,
		inner:  inner,
		pred:   pred,
		schema: outer.Schema().Concat(inner.Schema),
	}
}

// Schema implements Iterator.
func (n *NestedLoopIter) Schema() Schema { return n.schema }

// Open implements Iterator.
func (n *NestedLoopIter) Open(ctx context.Context) error {
	n.ob, n.oi, n.cur, n.pos, n.pend = Batch{}, 0, nil, 0, nil
	n.bb = NewBatchBuilder(len(n.schema.Columns))
	n.bb.Transient = n.TransientOutput
	if n.pred != nil {
		n.predFn = CompileBool(n.pred, n.schema)
	}
	return n.outer.Open(ctx)
}

// fail flushes an accumulated partial batch before surfacing err.
func (n *NestedLoopIter) fail(err error) (Batch, error) {
	if n.bb.Len() > 0 {
		n.pend = err
		return n.bb.Batch(), nil
	}
	return Batch{}, err
}

// Next implements Iterator.
func (n *NestedLoopIter) Next(max int) (Batch, error) {
	if n.pend != nil {
		err := n.pend
		n.pend = nil
		return Batch{}, err
	}
	if max <= 0 {
		max = DefaultBatchSize
	}
	n.bb.Reset(max)
	for n.bb.Len() < max {
		if n.cur == nil || n.pos >= len(n.inner.Tuples) {
			if n.oi >= len(n.ob.Rows) {
				b, err := n.outer.Next(max)
				if err != nil {
					return n.fail(err)
				}
				if b.Empty() {
					break
				}
				//lint:allow batchretain pull-synchronized: the stashed batch is fully consumed before the next outer Next
				n.ob, n.oi = b, 0
			}
			n.cur, n.pos = n.ob.Rows[n.oi], 0
			n.oi++
			continue
		}
		it := n.inner.Tuples[n.pos]
		n.pos++
		row := n.bb.Concat(n.cur, it)
		if n.predFn != nil {
			ok, err := n.predFn(row)
			if err != nil {
				n.bb.DropLast()
				return n.fail(err)
			}
			if !ok {
				n.bb.DropLast()
			}
		}
	}
	return n.bb.Batch(), nil
}

// Close implements Iterator.
func (n *NestedLoopIter) Close() error { return n.outer.Close() }

// HashJoinIter equi-joins two inputs: the build side is drained and
// hashed at Open (a pipeline breaker, staged through the Stager when
// set), the probe side streams. Output columns are always
// left.Schema ++ right.Schema regardless of which side builds; output
// order follows the probe stream, with matches in build-insertion order.
// Single string keys map the raw string straight to a bucket index (the
// table doubles as the interner: bucket index = dense handle); other key
// shapes use the pool-backed fixed-width encoding. Probing allocates
// nothing and build-side insertion allocates per distinct key, not per
// row.
type HashJoinIter struct {
	left, right Iterator
	leftIdx     []int // key positions in left schema
	rightIdx    []int // key positions in right schema
	residual    sqlparse.Expr
	resFn       func(Tuple) (bool, error) // residual compiled against schema
	buildLeft   bool
	stager      Stager
	schema      Schema
	// Intern optionally shares a pipeline-wide interner pool; set it
	// before Open (nil: the operator builds a private pool).
	Intern *Interner
	// TransientOutput recycles the output arena between batches; set
	// only via MarkTransient (see its contract).
	TransientOutput bool

	table   map[string]int
	stable  map[string]int // single string-column fast path: raw key string → bucket
	single  bool           // exactly one key column
	buckets []hjBucket
	enc     *KeyEncoder
	probe   Iterator
	pb      Batch // current probe batch
	pi      int   // next probe row within pb
	cur     Tuple // current probe tuple
	mb      int   // bucket index of cur's matches, -1 when none pending
	mi      int   // next match within bucket mb (0 = first, n = rest[n-1])
	bb      *BatchBuilder
	pend    error
}

// hjBucket holds the build tuples sharing one key, in insertion order.
// The first tuple is inline so unique keys (the common case) cost no
// per-key slice allocation; only duplicates spill into rest.
type hjBucket struct {
	first Tuple
	rest  []Tuple
}

// NewHashJoin prepares a hash join of left and right on pairwise equal
// key columns (resolved in each side's schema). buildLeft selects which
// side is materialized and hashed; the other side streams. A residual
// predicate, if non-nil, applies to the concatenated row.
func NewHashJoin(left, right Iterator, leftKeys, rightKeys []string, residual sqlparse.Expr, buildLeft bool, st Stager) (*HashJoinIter, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("relalg: hash join requires matching non-empty key lists")
	}
	ls, rs := left.Schema(), right.Schema()
	li := make([]int, len(leftKeys))
	ri := make([]int, len(rightKeys))
	for i := range leftKeys {
		li[i] = ls.Index(leftKeys[i])
		ri[i] = rs.Index(rightKeys[i])
		if li[i] < 0 || ri[i] < 0 {
			return nil, fmt.Errorf("relalg: hash join key %s/%s not found", leftKeys[i], rightKeys[i])
		}
	}
	return &HashJoinIter{
		left: left, right: right,
		leftIdx: li, rightIdx: ri,
		residual: residual, buildLeft: buildLeft, stager: st,
		schema: ls.Concat(rs), mb: -1,
	}, nil
}

// Schema implements Iterator.
func (h *HashJoinIter) Schema() Schema { return h.schema }

// Open implements Iterator: it drains the build side into the hash table.
func (h *HashJoinIter) Open(ctx context.Context) error {
	build, buildIdx := h.right, h.rightIdx
	if h.buildLeft {
		build, buildIdx = h.left, h.leftIdx
	}
	rel, err := Collect(ctx, build, "")
	if err != nil {
		return err
	}
	if rel, err = stage(h.stager, rel); err != nil {
		return err
	}
	h.enc = NewKeyEncoder(h.Intern)
	if h.residual != nil {
		h.resFn = CompileBool(h.residual, h.schema)
	}
	h.single = len(buildIdx) == 1
	if h.single {
		// Single string join keys (the common case) map the raw string
		// straight to its bucket index: the table itself is the interner
		// (bucket index = dense handle), so there is no second hop
		// through the shared pool and no pool growth per build row.
		h.stable = make(map[string]int, len(rel.Tuples))
	} else {
		h.table = make(map[string]int, len(rel.Tuples))
	}
	h.buckets = h.buckets[:0]
	if cap(h.buckets) < len(rel.Tuples) {
		h.buckets = make([]hjBucket, 0, len(rel.Tuples))
	}
	for _, t := range rel.Tuples {
		// SQL equality: NULL keys never join.
		hasNull := false
		for _, i := range buildIdx {
			if t[i].IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			continue
		}
		var idx int
		var ok bool
		if h.single && t[buildIdx[0]].K == KindString {
			s := t[buildIdx[0]].S
			if idx, ok = h.stable[s]; !ok {
				idx = len(h.buckets)
				h.buckets = append(h.buckets, hjBucket{})
				h.stable[s] = idx
			}
		} else {
			if h.table == nil {
				// Single-key build with a non-string value: fall back to
				// the generic encoded table for this row.
				h.table = make(map[string]int)
			}
			k := h.enc.Key(t, buildIdx)
			if idx, ok = h.table[string(k)]; !ok {
				idx = len(h.buckets)
				h.buckets = append(h.buckets, hjBucket{})
				h.table[string(k)] = idx
			}
		}
		if b := &h.buckets[idx]; b.first == nil {
			b.first = t
		} else {
			b.rest = append(b.rest, t)
		}
	}
	h.probe = h.left
	if h.buildLeft {
		h.probe = h.right
	}
	h.pb, h.pi, h.cur, h.mb, h.mi, h.pend = Batch{}, 0, nil, -1, 0, nil
	h.bb = NewBatchBuilder(len(h.schema.Columns))
	h.bb.Transient = h.TransientOutput
	return h.probe.Open(ctx)
}

// lookup finds the bucket for a probe tuple's key, if any. Single string
// keys probe the raw-string table directly — no encoding, no pool
// traffic; only multi-column or non-string keys pay for the generic
// encoded form.
func (h *HashJoinIter) lookup(t Tuple, probeIdx []int) (int, bool) {
	if h.single {
		if v := t[probeIdx[0]]; v.K == KindString {
			idx, ok := h.stable[v.S]
			return idx, ok
		}
	}
	if h.table == nil {
		return 0, false
	}
	idx, ok := h.table[string(h.enc.Key(t, probeIdx))]
	return idx, ok
}

// fail flushes an accumulated partial batch before surfacing err.
func (h *HashJoinIter) fail(err error) (Batch, error) {
	if h.bb.Len() > 0 {
		h.pend = err
		return h.bb.Batch(), nil
	}
	return Batch{}, err
}

// Next implements Iterator.
func (h *HashJoinIter) Next(max int) (Batch, error) {
	if h.pend != nil {
		err := h.pend
		h.pend = nil
		return Batch{}, err
	}
	if max <= 0 {
		max = DefaultBatchSize
	}
	probeIdx := h.leftIdx
	if h.buildLeft {
		probeIdx = h.rightIdx
	}
	h.bb.Reset(max)
	for h.bb.Len() < max {
		if h.mb < 0 {
			if h.pi >= len(h.pb.Rows) {
				b, err := h.probe.Next(max)
				if err != nil {
					return h.fail(err)
				}
				if b.Empty() {
					break
				}
				//lint:allow batchretain pull-synchronized: the stashed probe batch is fully consumed before the next probe Next
				h.pb, h.pi = b, 0
			}
			t := h.pb.Rows[h.pi]
			h.pi++
			if idx, ok := h.lookup(t, probeIdx); ok {
				h.cur, h.mb, h.mi = t, idx, 0
			}
			continue
		}
		bkt := &h.buckets[h.mb]
		var bt Tuple
		if h.mi == 0 {
			bt = bkt.first
		} else {
			bt = bkt.rest[h.mi-1]
		}
		h.mi++
		if h.mi > len(bkt.rest) {
			h.mb = -1
		}
		// Assemble in left ++ right order: bt came from the build side,
		// h.cur from the probe side.
		l, r := h.cur, bt
		if h.buildLeft {
			l, r = bt, h.cur
		}
		row := h.bb.Concat(l, r)
		if h.resFn != nil {
			ok, err := h.resFn(row)
			if err != nil {
				h.bb.DropLast()
				return h.fail(err)
			}
			if !ok {
				h.bb.DropLast()
			}
		}
	}
	return h.bb.Batch(), nil
}

// Close implements Iterator.
func (h *HashJoinIter) Close() error {
	h.table, h.stable, h.buckets, h.enc, h.mb = nil, nil, nil, nil, -1
	if h.probe == nil {
		return nil
	}
	return h.probe.Close()
}

// MergeJoinIter equi-joins two inputs by sorting both on the join keys.
// Both sides are pipeline breakers (drained, staged and sorted at Open);
// the merge phase itself then streams, emitting the cross product of each
// pair of equal-key runs incrementally and producing key-ordered output.
type MergeJoinIter struct {
	left, right Iterator
	leftIdx     []int
	rightIdx    []int
	residual    sqlparse.Expr
	resFn       func(Tuple) (bool, error) // residual compiled against schema
	stager      Stager
	schema      Schema
	// TransientOutput recycles the output arena between batches; set
	// only via MarkTransient (see its contract).
	TransientOutput bool

	sa, sb []Tuple
	// Merge state: [i,iEnd) × [j,jEnd) is the active equal-key run pair,
	// (ii,jj) the next pair inside it; iEnd==i means no active run.
	i, j, iEnd, jEnd, ii, jj int
	bb                       *BatchBuilder
	pend                     error
}

// NewMergeJoin prepares a sort-merge join of left and right on pairwise
// equal key columns, with an optional residual predicate.
func NewMergeJoin(left, right Iterator, leftKeys, rightKeys []string, residual sqlparse.Expr, st Stager) (*MergeJoinIter, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("relalg: merge join requires matching non-empty key lists")
	}
	ls, rs := left.Schema(), right.Schema()
	li := make([]int, len(leftKeys))
	ri := make([]int, len(rightKeys))
	for i := range leftKeys {
		li[i] = ls.Index(leftKeys[i])
		ri[i] = rs.Index(rightKeys[i])
		if li[i] < 0 || ri[i] < 0 {
			return nil, fmt.Errorf("relalg: merge join key %s/%s not found", leftKeys[i], rightKeys[i])
		}
	}
	return &MergeJoinIter{
		left: left, right: right,
		leftIdx: li, rightIdx: ri,
		residual: residual, stager: st,
		schema: ls.Concat(rs),
	}, nil
}

// Schema implements Iterator.
func (m *MergeJoinIter) Schema() Schema { return m.schema }

// Open implements Iterator: drain, stage and sort both sides.
func (m *MergeJoinIter) Open(ctx context.Context) error {
	sortSide := func(it Iterator, idx []int) ([]Tuple, error) {
		rel, err := Collect(ctx, it, "")
		if err != nil {
			return nil, err
		}
		if rel, err = stage(m.stager, rel); err != nil {
			return nil, err
		}
		return sortTuplesByKeyCols(rel.Tuples, idx), nil
	}
	var err error
	if m.sa, err = sortSide(m.left, m.leftIdx); err != nil {
		return err
	}
	if m.sb, err = sortSide(m.right, m.rightIdx); err != nil {
		return err
	}
	m.i, m.j, m.iEnd, m.jEnd = 0, 0, 0, 0
	m.bb = NewBatchBuilder(len(m.schema.Columns))
	m.bb.Transient = m.TransientOutput
	if m.residual != nil {
		m.resFn = CompileBool(m.residual, m.schema)
	}
	m.pend = nil
	return nil
}

func (m *MergeJoinIter) cmpKeys(ta, tb Tuple) int {
	for i := range m.leftIdx {
		if c := ta[m.leftIdx[i]].SortKey(tb[m.rightIdx[i]]); c != 0 {
			return c
		}
	}
	return 0
}

func sameKeyRun(tuples []Tuple, idx []int, i, j int) bool {
	for _, k := range idx {
		if tuples[i][k].SortKey(tuples[j][k]) != 0 {
			return false
		}
	}
	return true
}

// Next implements Iterator.
func (m *MergeJoinIter) Next(max int) (Batch, error) {
	if m.pend != nil {
		err := m.pend
		m.pend = nil
		return Batch{}, err
	}
	if max <= 0 {
		max = DefaultBatchSize
	}
	m.bb.Reset(max)
	for m.bb.Len() < max {
		// Emit from the active run pair, if any.
		if m.ii < m.iEnd {
			if m.jj >= m.jEnd {
				m.ii++
				m.jj = m.j
				continue
			}
			ta, tb := m.sa[m.ii], m.sb[m.jj]
			m.jj++
			// SQL equality: NULL keys never join.
			nullKey := false
			for k := range m.leftIdx {
				if ta[m.leftIdx[k]].IsNull() || tb[m.rightIdx[k]].IsNull() {
					nullKey = true
					break
				}
			}
			if nullKey {
				continue
			}
			row := m.bb.Concat(ta, tb)
			if m.resFn != nil {
				ok, err := m.resFn(row)
				if err != nil {
					m.bb.DropLast()
					if m.bb.Len() > 0 {
						m.pend = err
						return m.bb.Batch(), nil
					}
					return Batch{}, err
				}
				if !ok {
					m.bb.DropLast()
				}
			}
			continue
		}
		if m.iEnd > m.i {
			// Run pair exhausted; advance past it.
			m.i, m.j = m.iEnd, m.jEnd
			m.iEnd = m.i
		}
		// Find the next pair of equal-key runs.
		if m.i >= len(m.sa) || m.j >= len(m.sb) {
			break
		}
		switch c := m.cmpKeys(m.sa[m.i], m.sb[m.j]); {
		case c < 0:
			m.i++
		case c > 0:
			m.j++
		default:
			m.iEnd = m.i + 1
			for m.iEnd < len(m.sa) && sameKeyRun(m.sa, m.leftIdx, m.i, m.iEnd) {
				m.iEnd++
			}
			m.jEnd = m.j + 1
			for m.jEnd < len(m.sb) && sameKeyRun(m.sb, m.rightIdx, m.j, m.jEnd) {
				m.jEnd++
			}
			m.ii, m.jj = m.i, m.j
		}
	}
	return m.bb.Batch(), nil
}

// Close implements Iterator.
func (m *MergeJoinIter) Close() error { m.sa, m.sb, m.bb = nil, nil, nil; return nil }

// SortIter is the canonical pipeline breaker: Open drains the child,
// stages the buffer, sorts it with the materialized sort core, and then
// streams the sorted result (zero-copy batches over the sorted buffer).
type SortIter struct {
	child  Iterator
	keys   []OrderKey
	stager Stager
	// Par > 1 sorts with the parallel chunk-sort + merge-exchange core
	// (see parallelSortRelation); output is identical to the serial
	// stable sort. Set before Open.
	Par int
	out *ScanIter
}

// NewSort sorts child by keys (stable).
func NewSort(child Iterator, keys []OrderKey, st Stager) *SortIter {
	return &SortIter{child: child, keys: keys, stager: st}
}

// Schema implements Iterator.
func (s *SortIter) Schema() Schema { return s.child.Schema() }

// Open implements Iterator.
func (s *SortIter) Open(ctx context.Context) error {
	rel, err := Collect(ctx, s.child, "")
	if err != nil {
		return err
	}
	if rel, err = stage(s.stager, rel); err != nil {
		return err
	}
	var sorted *Relation
	if s.Par > 1 {
		sorted, err = parallelSortRelation(rel, s.keys, s.Par)
	} else {
		sorted, err = sortRelation(rel, s.keys)
	}
	if err != nil {
		return err
	}
	s.out = NewScan(sorted)
	return s.out.Open(ctx)
}

// Next implements Iterator.
func (s *SortIter) Next(max int) (Batch, error) {
	if s.out == nil {
		return Batch{}, nil
	}
	return s.out.Next(max)
}

// Close implements Iterator.
func (s *SortIter) Close() error { s.out = nil; return nil }

// GroupByIter is the aggregation pipeline breaker: Open drains the
// child, stages the buffer, and runs the materialized grouping core.
type GroupByIter struct {
	child  Iterator
	keys   []sqlparse.Expr
	items  []AggItem
	having sqlparse.Expr
	stager Stager
	schema Schema
	// Intern optionally shares a pipeline-wide interner pool with the
	// grouping core; set it before Open.
	Intern *Interner
	// Par > 1 groups with the hash-partitioned parallel core (see
	// groupByParallel), which uses private pools per partition and
	// ignores Intern; output is identical to the serial core. Set
	// before Open.
	Par int
	out *ScanIter
}

// NewGroupBy groups child by keys and computes items per group (see
// GroupBy for the exact SQL semantics, including the empty-input global
// aggregate row).
func NewGroupBy(child Iterator, keys []sqlparse.Expr, items []AggItem, having sqlparse.Expr, st Stager) *GroupByIter {
	in := child.Schema()
	cols := make([]Column, len(items))
	for i, it := range items {
		cols[i] = Column{Name: it.Name, Type: aggType(it.Expr, in)}
	}
	return &GroupByIter{child: child, keys: keys, items: items, having: having,
		stager: st, schema: Schema{Columns: cols}}
}

// Schema implements Iterator.
func (g *GroupByIter) Schema() Schema { return g.schema }

// Open implements Iterator.
func (g *GroupByIter) Open(ctx context.Context) error {
	rel, err := Collect(ctx, g.child, "")
	if err != nil {
		return err
	}
	if rel, err = stage(g.stager, rel); err != nil {
		return err
	}
	var grouped *Relation
	if g.Par > 1 {
		grouped, err = groupByParallel(rel, g.keys, g.items, g.having, g.Par)
	} else {
		grouped, err = groupByInterned(rel, g.keys, g.items, g.having, g.Intern)
	}
	if err != nil {
		return err
	}
	g.out = NewScan(grouped)
	return g.out.Open(ctx)
}

// Next implements Iterator.
func (g *GroupByIter) Next(max int) (Batch, error) {
	if g.out == nil {
		return Batch{}, nil
	}
	return g.out.Next(max)
}

// Close implements Iterator.
func (g *GroupByIter) Close() error { g.out = nil; return nil }
