package relalg

import (
	"context"
	"fmt"

	"repro/internal/sqlparse"
)

// FilterIter streams the child tuples satisfying a predicate.
type FilterIter struct {
	child Iterator
	pred  func(Tuple) (bool, error)
}

// NewFilterFunc filters child by an arbitrary per-tuple predicate.
func NewFilterFunc(child Iterator, pred func(Tuple) (bool, error)) *FilterIter {
	return &FilterIter{child: child, pred: pred}
}

// NewFilter filters child by a sqlparse expression evaluated against the
// child schema (SQL three-valued logic collapsed to two as in EvalBool).
// A nil expression passes everything.
func NewFilter(child Iterator, pred sqlparse.Expr) *FilterIter {
	if pred == nil {
		return &FilterIter{child: child, pred: func(Tuple) (bool, error) { return true, nil }}
	}
	schema := child.Schema()
	return &FilterIter{child: child, pred: func(t Tuple) (bool, error) {
		return EvalBool(pred, schema, t)
	}}
}

// Schema implements Iterator.
func (f *FilterIter) Schema() Schema { return f.child.Schema() }

// Open implements Iterator.
func (f *FilterIter) Open(ctx context.Context) error { return f.child.Open(ctx) }

// Next implements Iterator.
func (f *FilterIter) Next() (Tuple, bool, error) {
	for {
		t, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := f.pred(t)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return t, true, nil
		}
	}
}

// Close implements Iterator.
func (f *FilterIter) Close() error { return f.child.Close() }

// ProjectIter computes one output column per item for every child tuple.
type ProjectIter struct {
	child  Iterator
	items  []ProjectItem
	in     Schema // child schema, resolved once
	schema Schema
}

// ProjectionSchema computes the output schema of projecting items over
// an input schema (types inferred per expression).
func ProjectionSchema(items []ProjectItem, in Schema) Schema {
	cols := make([]Column, len(items))
	for i, it := range items {
		cols[i] = Column{Name: it.Name, Type: InferType(it.Expr, in)}
	}
	return Schema{Columns: cols}
}

// NewProject projects child through items; output types are inferred from
// the child schema.
func NewProject(child Iterator, items []ProjectItem) *ProjectIter {
	in := child.Schema()
	return &ProjectIter{child: child, items: items, in: in, schema: ProjectionSchema(items, in)}
}

// Schema implements Iterator.
func (p *ProjectIter) Schema() Schema { return p.schema }

// Open implements Iterator.
func (p *ProjectIter) Open(ctx context.Context) error { return p.child.Open(ctx) }

// Next implements Iterator.
func (p *ProjectIter) Next() (Tuple, bool, error) {
	t, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	row := make(Tuple, len(p.items))
	for i, it := range p.items {
		v, err := Eval(it.Expr, p.in, t)
		if err != nil {
			return nil, false, err
		}
		row[i] = v
	}
	return row, true, nil
}

// Close implements Iterator.
func (p *ProjectIter) Close() error { return p.child.Close() }

// LimitIter passes through the first n tuples and then reports
// exhaustion without pulling from its child again — the early-exit
// operator that makes the streaming executor worthwhile.
type LimitIter struct {
	child  Iterator
	n      int
	seen   int
	opened bool
}

// NewLimit keeps the first n tuples of child (n < 0 keeps all).
func NewLimit(child Iterator, n int) *LimitIter {
	return &LimitIter{child: child, n: n}
}

// Schema implements Iterator.
func (l *LimitIter) Schema() Schema { return l.child.Schema() }

// Open implements Iterator. LIMIT 0 is a complete short-circuit: the
// child is never opened, so no source is contacted and no tuple moves.
func (l *LimitIter) Open(ctx context.Context) error {
	l.seen = 0
	if l.n == 0 {
		return nil
	}
	if err := l.child.Open(ctx); err != nil {
		return err
	}
	l.opened = true
	return nil
}

// Next implements Iterator.
func (l *LimitIter) Next() (Tuple, bool, error) {
	if l.n >= 0 && l.seen >= l.n {
		return nil, false, nil
	}
	t, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// Close implements Iterator.
func (l *LimitIter) Close() error {
	if !l.opened {
		return nil
	}
	l.opened = false
	return l.child.Close()
}

// DistinctIter streams the child tuples, dropping duplicates of tuples
// already emitted (first occurrence wins). It holds the set of seen keys,
// not the tuples, so it streams without being a full pipeline breaker.
type DistinctIter struct {
	child Iterator
	seen  map[string]bool
}

// NewDistinct deduplicates child.
func NewDistinct(child Iterator) *DistinctIter { return &DistinctIter{child: child} }

// Schema implements Iterator.
func (d *DistinctIter) Schema() Schema { return d.child.Schema() }

// Open implements Iterator.
func (d *DistinctIter) Open(ctx context.Context) error {
	d.seen = make(map[string]bool)
	return d.child.Open(ctx)
}

// Next implements Iterator.
func (d *DistinctIter) Next() (Tuple, bool, error) {
	for {
		t, ok, err := d.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := t.FullKey()
		if !d.seen[k] {
			d.seen[k] = true
			return t, true, nil
		}
	}
}

// Close implements Iterator.
func (d *DistinctIter) Close() error { d.seen = nil; return d.child.Close() }

// UnionAllIter concatenates its children's streams in order, opening each
// child only when the previous one is exhausted (so with an upstream
// early exit, later children may never run at all). A child the union has
// advanced past is closed eagerly, before the next child opens: the union
// will never pull from it again, and holding it open would pin its
// resources — including any source-access admission slot its scan leaf
// still owns when an early exit (a per-arm LIMIT) stopped the arm before
// stream exhaustion, which could starve the next arm's admission against
// the same source. For set-semantics UNION, wrap it in NewDistinct.
type UnionAllIter struct {
	children []Iterator
	ctx      context.Context
	cur      int
	opened   int // children[0:opened] have been opened
	closed   int // children[0:closed] have been eagerly closed
}

// NewUnionAll concatenates children; schemas must have equal arity
// (column names are taken from the first child, as in SQL).
func NewUnionAll(children ...Iterator) (*UnionAllIter, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("relalg: union of no inputs")
	}
	arity := len(children[0].Schema().Columns)
	for _, c := range children[1:] {
		if len(c.Schema().Columns) != arity {
			return nil, fmt.Errorf("relalg: UNION arity mismatch: %d vs %d",
				arity, len(c.Schema().Columns))
		}
	}
	return &UnionAllIter{children: children}, nil
}

// Schema implements Iterator.
func (u *UnionAllIter) Schema() Schema { return u.children[0].Schema() }

// Open implements Iterator.
func (u *UnionAllIter) Open(ctx context.Context) error {
	u.ctx = ctx
	u.cur, u.opened, u.closed = 0, 0, 0
	if err := u.children[0].Open(ctx); err != nil {
		return err
	}
	u.opened = 1
	return nil
}

// Next implements Iterator.
func (u *UnionAllIter) Next() (Tuple, bool, error) {
	for u.cur < len(u.children) {
		t, ok, err := u.children[u.cur].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return t, true, nil
		}
		// Done with this child: release it before the next one opens.
		u.closed = u.cur + 1
		if err := u.children[u.cur].Close(); err != nil {
			return nil, false, err
		}
		u.cur++
		if u.cur < len(u.children) {
			if err := u.children[u.cur].Open(u.ctx); err != nil {
				return nil, false, err
			}
			u.opened = u.cur + 1
		}
	}
	return nil, false, nil
}

// Close implements Iterator.
func (u *UnionAllIter) Close() error {
	var first error
	for i := u.closed; i < u.opened; i++ {
		if err := u.children[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	u.closed = u.opened
	return first
}

// NestedLoopIter joins a streaming outer side against a materialized
// inner relation, emitting concatenated rows where pred holds (nil pred:
// cross product). The outer side streams; the inner is re-scanned per
// outer tuple. Candidate rows are assembled in a reused scratch buffer
// and cloned only when kept, so allocation is O(matches), not O(pairs).
type NestedLoopIter struct {
	outer  Iterator
	inner  *Relation
	pred   sqlparse.Expr
	schema Schema

	cur     Tuple // current outer tuple, nil before first
	pos     int   // next inner index
	scratch Tuple
}

// NewNestedLoop joins outer against inner on pred.
func NewNestedLoop(outer Iterator, inner *Relation, pred sqlparse.Expr) *NestedLoopIter {
	return &NestedLoopIter{
		outer:  outer,
		inner:  inner,
		pred:   pred,
		schema: outer.Schema().Concat(inner.Schema),
	}
}

// Schema implements Iterator.
func (n *NestedLoopIter) Schema() Schema { return n.schema }

// Open implements Iterator.
func (n *NestedLoopIter) Open(ctx context.Context) error {
	n.cur, n.pos = nil, 0
	n.scratch = make(Tuple, len(n.schema.Columns))
	return n.outer.Open(ctx)
}

// Next implements Iterator.
func (n *NestedLoopIter) Next() (Tuple, bool, error) {
	for {
		if n.cur == nil || n.pos >= len(n.inner.Tuples) {
			t, ok, err := n.outer.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.cur, n.pos = t, 0
			copy(n.scratch, t)
			continue
		}
		it := n.inner.Tuples[n.pos]
		n.pos++
		copy(n.scratch[len(n.cur):], it)
		if n.pred != nil {
			ok, err := EvalBool(n.pred, n.schema, n.scratch)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
		}
		return n.scratch.Clone(), true, nil
	}
}

// Close implements Iterator.
func (n *NestedLoopIter) Close() error { return n.outer.Close() }

// HashJoinIter equi-joins two inputs: the build side is drained and
// hashed at Open (a pipeline breaker, staged through the Stager when
// set), the probe side streams. Output columns are always
// left.Schema ++ right.Schema regardless of which side builds; output
// order follows the probe stream, with matches in build-insertion order.
type HashJoinIter struct {
	left, right Iterator
	leftIdx     []int // key positions in left schema
	rightIdx    []int // key positions in right schema
	residual    sqlparse.Expr
	buildLeft   bool
	stager      Stager
	schema      Schema

	table   map[string][]Tuple
	probe   Iterator
	cur     Tuple   // current probe tuple
	matches []Tuple // remaining build matches for cur
}

// NewHashJoin prepares a hash join of left and right on pairwise equal
// key columns (resolved in each side's schema). buildLeft selects which
// side is materialized and hashed; the other side streams. A residual
// predicate, if non-nil, applies to the concatenated row.
func NewHashJoin(left, right Iterator, leftKeys, rightKeys []string, residual sqlparse.Expr, buildLeft bool, st Stager) (*HashJoinIter, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("relalg: hash join requires matching non-empty key lists")
	}
	ls, rs := left.Schema(), right.Schema()
	li := make([]int, len(leftKeys))
	ri := make([]int, len(rightKeys))
	for i := range leftKeys {
		li[i] = ls.Index(leftKeys[i])
		ri[i] = rs.Index(rightKeys[i])
		if li[i] < 0 || ri[i] < 0 {
			return nil, fmt.Errorf("relalg: hash join key %s/%s not found", leftKeys[i], rightKeys[i])
		}
	}
	return &HashJoinIter{
		left: left, right: right,
		leftIdx: li, rightIdx: ri,
		residual: residual, buildLeft: buildLeft, stager: st,
		schema: ls.Concat(rs),
	}, nil
}

// Schema implements Iterator.
func (h *HashJoinIter) Schema() Schema { return h.schema }

// Open implements Iterator: it drains the build side into the hash table.
func (h *HashJoinIter) Open(ctx context.Context) error {
	build, buildIdx := h.right, h.rightIdx
	if h.buildLeft {
		build, buildIdx = h.left, h.leftIdx
	}
	rel, err := Collect(ctx, build, "")
	if err != nil {
		return err
	}
	if rel, err = stage(h.stager, rel); err != nil {
		return err
	}
	h.table = make(map[string][]Tuple, len(rel.Tuples))
	for _, t := range rel.Tuples {
		// SQL equality: NULL keys never join.
		hasNull := false
		for _, i := range buildIdx {
			if t[i].IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			continue
		}
		k := t.Key(buildIdx)
		h.table[k] = append(h.table[k], t)
	}
	h.probe = h.left
	if h.buildLeft {
		h.probe = h.right
	}
	h.cur, h.matches = nil, nil
	return h.probe.Open(ctx)
}

// Next implements Iterator.
func (h *HashJoinIter) Next() (Tuple, bool, error) {
	probeIdx := h.leftIdx
	if h.buildLeft {
		probeIdx = h.rightIdx
	}
	for {
		for len(h.matches) == 0 {
			t, ok, err := h.probe.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			h.cur = t
			h.matches = h.table[t.Key(probeIdx)]
		}
		bt := h.matches[0]
		h.matches = h.matches[1:]
		// Assemble in left ++ right order: bt came from the build side,
		// h.cur from the probe side.
		l, r := h.cur, bt
		if h.buildLeft {
			l, r = bt, h.cur
		}
		row := make(Tuple, 0, len(l)+len(r))
		row = append(row, l...)
		row = append(row, r...)
		if h.residual != nil {
			ok, err := EvalBool(h.residual, h.schema, row)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
		}
		return row, true, nil
	}
}

// Close implements Iterator.
func (h *HashJoinIter) Close() error {
	h.table, h.matches = nil, nil
	if h.probe == nil {
		return nil
	}
	return h.probe.Close()
}

// MergeJoinIter equi-joins two inputs by sorting both on the join keys.
// Both sides are pipeline breakers (drained, staged and sorted at Open);
// the merge phase itself then streams, emitting the cross product of each
// pair of equal-key runs incrementally and producing key-ordered output.
type MergeJoinIter struct {
	left, right Iterator
	leftIdx     []int
	rightIdx    []int
	residual    sqlparse.Expr
	stager      Stager
	schema      Schema

	sa, sb []Tuple
	// Merge state: [i,iEnd) × [j,jEnd) is the active equal-key run pair,
	// (ii,jj) the next pair inside it; iEnd==i means no active run.
	i, j, iEnd, jEnd, ii, jj int
}

// NewMergeJoin prepares a sort-merge join of left and right on pairwise
// equal key columns, with an optional residual predicate.
func NewMergeJoin(left, right Iterator, leftKeys, rightKeys []string, residual sqlparse.Expr, st Stager) (*MergeJoinIter, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("relalg: merge join requires matching non-empty key lists")
	}
	ls, rs := left.Schema(), right.Schema()
	li := make([]int, len(leftKeys))
	ri := make([]int, len(rightKeys))
	for i := range leftKeys {
		li[i] = ls.Index(leftKeys[i])
		ri[i] = rs.Index(rightKeys[i])
		if li[i] < 0 || ri[i] < 0 {
			return nil, fmt.Errorf("relalg: merge join key %s/%s not found", leftKeys[i], rightKeys[i])
		}
	}
	return &MergeJoinIter{
		left: left, right: right,
		leftIdx: li, rightIdx: ri,
		residual: residual, stager: st,
		schema: ls.Concat(rs),
	}, nil
}

// Schema implements Iterator.
func (m *MergeJoinIter) Schema() Schema { return m.schema }

// Open implements Iterator: drain, stage and sort both sides.
func (m *MergeJoinIter) Open(ctx context.Context) error {
	sortSide := func(it Iterator, idx []int) ([]Tuple, error) {
		rel, err := Collect(ctx, it, "")
		if err != nil {
			return nil, err
		}
		if rel, err = stage(m.stager, rel); err != nil {
			return nil, err
		}
		return sortTuplesByKeyCols(rel.Tuples, idx), nil
	}
	var err error
	if m.sa, err = sortSide(m.left, m.leftIdx); err != nil {
		return err
	}
	if m.sb, err = sortSide(m.right, m.rightIdx); err != nil {
		return err
	}
	m.i, m.j, m.iEnd, m.jEnd = 0, 0, 0, 0
	return nil
}

func (m *MergeJoinIter) cmpKeys(ta, tb Tuple) int {
	for i := range m.leftIdx {
		if c := ta[m.leftIdx[i]].SortKey(tb[m.rightIdx[i]]); c != 0 {
			return c
		}
	}
	return 0
}

func sameKeyRun(tuples []Tuple, idx []int, i, j int) bool {
	for _, k := range idx {
		if tuples[i][k].SortKey(tuples[j][k]) != 0 {
			return false
		}
	}
	return true
}

// Next implements Iterator.
func (m *MergeJoinIter) Next() (Tuple, bool, error) {
	for {
		// Emit from the active run pair, if any.
		for m.ii < m.iEnd {
			if m.jj >= m.jEnd {
				m.ii++
				m.jj = m.j
				continue
			}
			ta, tb := m.sa[m.ii], m.sb[m.jj]
			m.jj++
			// SQL equality: NULL keys never join.
			nullKey := false
			for k := range m.leftIdx {
				if ta[m.leftIdx[k]].IsNull() || tb[m.rightIdx[k]].IsNull() {
					nullKey = true
					break
				}
			}
			if nullKey {
				continue
			}
			row := make(Tuple, 0, len(ta)+len(tb))
			row = append(row, ta...)
			row = append(row, tb...)
			if m.residual != nil {
				ok, err := EvalBool(m.residual, m.schema, row)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue
				}
			}
			return row, true, nil
		}
		if m.iEnd > m.i {
			// Run pair exhausted; advance past it.
			m.i, m.j = m.iEnd, m.jEnd
			m.iEnd = m.i
		}
		// Find the next pair of equal-key runs.
		if m.i >= len(m.sa) || m.j >= len(m.sb) {
			return nil, false, nil
		}
		switch c := m.cmpKeys(m.sa[m.i], m.sb[m.j]); {
		case c < 0:
			m.i++
		case c > 0:
			m.j++
		default:
			m.iEnd = m.i + 1
			for m.iEnd < len(m.sa) && sameKeyRun(m.sa, m.leftIdx, m.i, m.iEnd) {
				m.iEnd++
			}
			m.jEnd = m.j + 1
			for m.jEnd < len(m.sb) && sameKeyRun(m.sb, m.rightIdx, m.j, m.jEnd) {
				m.jEnd++
			}
			m.ii, m.jj = m.i, m.j
		}
	}
}

// Close implements Iterator.
func (m *MergeJoinIter) Close() error { m.sa, m.sb = nil, nil; return nil }

// SortIter is the canonical pipeline breaker: Open drains the child,
// stages the buffer, sorts it with the materialized sort core, and then
// streams the sorted result.
type SortIter struct {
	child  Iterator
	keys   []OrderKey
	stager Stager
	out    *ScanIter
}

// NewSort sorts child by keys (stable).
func NewSort(child Iterator, keys []OrderKey, st Stager) *SortIter {
	return &SortIter{child: child, keys: keys, stager: st}
}

// Schema implements Iterator.
func (s *SortIter) Schema() Schema { return s.child.Schema() }

// Open implements Iterator.
func (s *SortIter) Open(ctx context.Context) error {
	rel, err := Collect(ctx, s.child, "")
	if err != nil {
		return err
	}
	if rel, err = stage(s.stager, rel); err != nil {
		return err
	}
	sorted, err := sortRelation(rel, s.keys)
	if err != nil {
		return err
	}
	s.out = NewScan(sorted)
	return s.out.Open(ctx)
}

// Next implements Iterator.
func (s *SortIter) Next() (Tuple, bool, error) {
	if s.out == nil {
		return nil, false, nil
	}
	return s.out.Next()
}

// Close implements Iterator.
func (s *SortIter) Close() error { s.out = nil; return nil }

// GroupByIter is the aggregation pipeline breaker: Open drains the
// child, stages the buffer, and runs the materialized grouping core.
type GroupByIter struct {
	child  Iterator
	keys   []sqlparse.Expr
	items  []AggItem
	having sqlparse.Expr
	stager Stager
	schema Schema
	out    *ScanIter
}

// NewGroupBy groups child by keys and computes items per group (see
// GroupBy for the exact SQL semantics, including the empty-input global
// aggregate row).
func NewGroupBy(child Iterator, keys []sqlparse.Expr, items []AggItem, having sqlparse.Expr, st Stager) *GroupByIter {
	in := child.Schema()
	cols := make([]Column, len(items))
	for i, it := range items {
		cols[i] = Column{Name: it.Name, Type: aggType(it.Expr, in)}
	}
	return &GroupByIter{child: child, keys: keys, items: items, having: having,
		stager: st, schema: Schema{Columns: cols}}
}

// Schema implements Iterator.
func (g *GroupByIter) Schema() Schema { return g.schema }

// Open implements Iterator.
func (g *GroupByIter) Open(ctx context.Context) error {
	rel, err := Collect(ctx, g.child, "")
	if err != nil {
		return err
	}
	if rel, err = stage(g.stager, rel); err != nil {
		return err
	}
	grouped, err := GroupBy(rel, g.keys, g.items, g.having)
	if err != nil {
		return err
	}
	g.out = NewScan(grouped)
	return g.out.Open(ctx)
}

// Next implements Iterator.
func (g *GroupByIter) Next() (Tuple, bool, error) {
	if g.out == nil {
		return nil, false, nil
	}
	return g.out.Next()
}

// Close implements Iterator.
func (g *GroupByIter) Close() error { g.out = nil; return nil }
