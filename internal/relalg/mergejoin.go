package relalg

import (
	"context"

	"repro/internal/sqlparse"
)

// MergeJoin equi-joins a and b on pairwise key columns by sorting both
// inputs on the keys and zipping runs of equal values. It is the third
// physical join of the engine (with nested-loop and hash): preferable when
// inputs are large and nearly sorted, and it produces key-ordered output.
// Keys compare with Value.SortKey; a residual predicate applies afterwards.
// It is a thin wrapper over MergeJoinIter, which sorts both sides at Open
// and streams the merge phase.
func MergeJoin(a, b *Relation, aKeys, bKeys []string, residual sqlparse.Expr) (*Relation, error) {
	it, err := NewMergeJoin(NewScan(a), NewScan(b), aKeys, bKeys, residual, nil)
	if err != nil {
		return nil, err
	}
	//lint:allow ctxflow materialized op over in-memory relations: the drain does no remote work, nothing to cancel
	return Collect(context.Background(), it, "")
}
