package relalg

import (
	"fmt"
	"sort"

	"repro/internal/sqlparse"
)

// MergeJoin equi-joins a and b on pairwise key columns by sorting both
// inputs on the keys and zipping runs of equal values. It is the third
// physical join of the engine (with nested-loop and hash): preferable when
// inputs are large and nearly sorted, and it produces key-ordered output.
// Keys compare with Value.SortKey; a residual predicate applies afterwards.
func MergeJoin(a, b *Relation, aKeys, bKeys []string, residual sqlparse.Expr) (*Relation, error) {
	if len(aKeys) != len(bKeys) || len(aKeys) == 0 {
		return nil, fmt.Errorf("relalg: merge join requires matching non-empty key lists")
	}
	aIdx := make([]int, len(aKeys))
	bIdx := make([]int, len(bKeys))
	for i := range aKeys {
		aIdx[i] = a.Schema.Index(aKeys[i])
		bIdx[i] = b.Schema.Index(bKeys[i])
		if aIdx[i] < 0 || bIdx[i] < 0 {
			return nil, fmt.Errorf("relalg: merge join key %s/%s not found", aKeys[i], bKeys[i])
		}
	}

	sortByKeys := func(tuples []Tuple, idx []int) []Tuple {
		out := append([]Tuple(nil), tuples...)
		sort.SliceStable(out, func(i, j int) bool {
			for _, k := range idx {
				if c := out[i][k].SortKey(out[j][k]); c != 0 {
					return c < 0
				}
			}
			return false
		})
		return out
	}
	sa := sortByKeys(a.Tuples, aIdx)
	sb := sortByKeys(b.Tuples, bIdx)

	cmpKeys := func(ta, tb Tuple) int {
		for i := range aIdx {
			if c := ta[aIdx[i]].SortKey(tb[bIdx[i]]); c != 0 {
				return c
			}
		}
		return 0
	}
	sameKeys := func(tuples []Tuple, idx []int, i, j int) bool {
		for _, k := range idx {
			if tuples[i][k].SortKey(tuples[j][k]) != 0 {
				return false
			}
		}
		return true
	}

	schema := a.Schema.Concat(b.Schema)
	out := NewRelation("", schema)
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		switch c := cmpKeys(sa[i], sb[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Runs of equal keys on both sides: emit the cross product.
			iEnd := i + 1
			for iEnd < len(sa) && sameKeys(sa, aIdx, i, iEnd) {
				iEnd++
			}
			jEnd := j + 1
			for jEnd < len(sb) && sameKeys(sb, bIdx, j, jEnd) {
				jEnd++
			}
			for ii := i; ii < iEnd; ii++ {
				for jj := j; jj < jEnd; jj++ {
					// SQL equality: NULL keys never join.
					nullKey := false
					for k := range aIdx {
						if sa[ii][aIdx[k]].IsNull() || sb[jj][bIdx[k]].IsNull() {
							nullKey = true
							break
						}
					}
					if nullKey {
						continue
					}
					row := make(Tuple, 0, len(sa[ii])+len(sb[jj]))
					row = append(row, sa[ii]...)
					row = append(row, sb[jj]...)
					keep := true
					if residual != nil {
						ok, err := EvalBool(residual, schema, row)
						if err != nil {
							return nil, err
						}
						keep = ok
					}
					if keep {
						out.Tuples = append(out.Tuples, row)
					}
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return out, nil
}
