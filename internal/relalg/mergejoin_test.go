package relalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sqlparse"
)

func TestMergeJoinBasic(t *testing.T) {
	a := figure2R1()
	b := figure2R2()
	mj, err := MergeJoin(a, b, []string{"rl.cname"}, []string{"r2.cname"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hj, err := HashJoin(a, b, []string{"rl.cname"}, []string{"r2.cname"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !SameTuples(mj, hj) {
		t.Errorf("merge join != hash join:\n%s\nvs\n%s", mj, hj)
	}
}

func TestMergeJoinResidual(t *testing.T) {
	a := figure2R1()
	b := figure2R2()
	pred := sqlparse.Bin(">", sqlparse.Col("rl", "revenue"), sqlparse.Num(2000000))
	mj, err := MergeJoin(a, b, []string{"rl.cname"}, []string{"r2.cname"}, pred)
	if err != nil {
		t.Fatal(err)
	}
	if mj.Len() != 1 || mj.Tuples[0][0].S != "IBM" {
		t.Errorf("residual filter: %s", mj)
	}
}

func TestMergeJoinErrors(t *testing.T) {
	a := figure2R1()
	b := figure2R2()
	if _, err := MergeJoin(a, b, nil, nil, nil); err == nil {
		t.Error("empty keys accepted")
	}
	if _, err := MergeJoin(a, b, []string{"zzz"}, []string{"r2.cname"}, nil); err == nil {
		t.Error("bad key accepted")
	}
}

// Property: merge join, hash join and nested-loop join agree, including on
// duplicate keys and NULL keys (which never join).
func TestThreeJoinsAgreeProperty(t *testing.T) {
	pred := sqlparse.Bin("=", sqlparse.Col("a", "k"), sqlparse.Col("b", "k"))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := testRel("a", "a.k:num, a.v:num")
		b := testRel("b", "b.k:num, b.w:num")
		addRow := func(rel *Relation) {
			key := Value{}
			if r.Intn(5) > 0 { // 20% NULL keys
				key = NumV(float64(r.Intn(4)))
			}
			rel.MustAdd(key, NumV(float64(r.Intn(100))))
		}
		for i := 0; i < r.Intn(25); i++ {
			addRow(a)
		}
		for i := 0; i < r.Intn(25); i++ {
			addRow(b)
		}
		nl, err := NestedLoopJoin(a, b, pred)
		if err != nil {
			return false
		}
		hj, err := HashJoin(a, b, []string{"a.k"}, []string{"b.k"}, nil)
		if err != nil {
			return false
		}
		mj, err := MergeJoin(a, b, []string{"a.k"}, []string{"b.k"}, nil)
		if err != nil {
			return false
		}
		return SameTuples(nl, hj) && SameTuples(nl, mj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Merge join output is ordered by the join keys.
func TestMergeJoinOutputOrdered(t *testing.T) {
	a := testRel("a", "a.k:num",
		[]Value{NumV(3)}, []Value{NumV(1)}, []Value{NumV(2)})
	b := testRel("b", "b.k:num",
		[]Value{NumV(2)}, []Value{NumV(3)}, []Value{NumV(1)})
	mj, err := MergeJoin(a, b, []string{"a.k"}, []string{"b.k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < mj.Len(); i++ {
		if mj.Tuples[i-1][0].N > mj.Tuples[i][0].N {
			t.Fatalf("output not key-ordered: %s", mj)
		}
	}
}
