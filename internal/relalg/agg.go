package relalg

import (
	"fmt"

	"repro/internal/sqlparse"
)

// AggItem is one output column of a grouped query: either a plain
// expression over the group key or an aggregate function call.
type AggItem struct {
	Name string
	Expr sqlparse.Expr // may contain FuncCall nodes
}

// GroupBy groups r by the key expressions and computes the items per
// group. With no keys, the whole relation is one group (global
// aggregation); an empty input then yields one row of aggregate identity
// values (COUNT=0, SUM/AVG/MIN/MAX=NULL), matching SQL.
func GroupBy(r *Relation, keys []sqlparse.Expr, items []AggItem, having sqlparse.Expr) (*Relation, error) {
	return groupByInterned(r, keys, items, having, nil)
}

// groupByInterned is the grouping core. Group keys are hashed as interned
// fixed-width encodings (KeyEncoder over the given pool, or a private one
// when in is nil); group output order is first appearance, exactly as
// before. Handles stay inside this call — the returned relation carries
// plain Values only.
func groupByInterned(r *Relation, keys []sqlparse.Expr, items []AggItem, having sqlparse.Expr, in *Interner) (*Relation, error) {
	type group struct {
		tuples []Tuple
	}
	enc := NewKeyEncoder(in)
	index := map[string]int{}
	var order []*group
	kv := make([]Value, len(keys))
	for _, t := range r.Tuples {
		for i, k := range keys {
			v, err := Eval(k, r.Schema, t)
			if err != nil {
				return nil, err
			}
			kv[i] = v
		}
		hk := enc.FullKey(kv)
		idx, ok := index[string(hk)]
		if !ok {
			idx = len(order)
			index[string(hk)] = idx
			order = append(order, &group{})
		}
		order[idx].tuples = append(order[idx].tuples, t)
	}
	if len(keys) == 0 && len(order) == 0 {
		order = append(order, &group{})
	}

	cols := make([]Column, len(items))
	for i, it := range items {
		cols[i] = Column{Name: it.Name, Type: aggType(it.Expr, r.Schema)}
	}
	out := NewRelation(r.Name, Schema{Columns: cols})
	for _, g := range order {
		row := make(Tuple, len(items))
		for i, it := range items {
			v, err := evalAgg(it.Expr, r.Schema, g.tuples)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		if having != nil {
			// HAVING evaluates aggregate expressions over the same group.
			hv, err := evalAgg(having, r.Schema, g.tuples)
			if err != nil {
				return nil, err
			}
			if hv.K != KindBool || !hv.B {
				continue
			}
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

func aggType(e sqlparse.Expr, schema Schema) Kind {
	if fc, ok := e.(*sqlparse.FuncCall); ok {
		switch fc.Name {
		case "MIN", "MAX":
			if len(fc.Args) == 1 {
				return InferType(fc.Args[0], schema)
			}
		}
		return KindNumber
	}
	return InferType(e, schema)
}

// evalAgg evaluates an expression that may contain aggregate calls over a
// group of tuples. Non-aggregate subexpressions are evaluated on the first
// tuple of the group (they must be functionally dependent on the group
// key; the planner validates that before execution).
func evalAgg(e sqlparse.Expr, schema Schema, group []Tuple) (Value, error) {
	switch e := e.(type) {
	case *sqlparse.FuncCall:
		return applyAggregate(e, schema, group)
	case *sqlparse.BinaryExpr:
		l, err := evalAgg(e.L, schema, group)
		if err != nil {
			return Null, err
		}
		r, err := evalAgg(e.R, schema, group)
		if err != nil {
			return Null, err
		}
		return evalBinary(&sqlparse.BinaryExpr{Op: e.Op, L: lit(l), R: lit(r)}, Schema{}, nil)
	case *sqlparse.UnaryExpr:
		x, err := evalAgg(e.X, schema, group)
		if err != nil {
			return Null, err
		}
		return Eval(&sqlparse.UnaryExpr{Op: e.Op, X: lit(x)}, Schema{}, nil)
	default:
		if len(group) == 0 {
			return Null, nil
		}
		return Eval(e, schema, group[0])
	}
}

// lit wraps a computed Value back into a literal expression for reuse of
// the scalar evaluator.
func lit(v Value) sqlparse.Expr {
	switch v.K {
	case KindNumber:
		return sqlparse.NumberLit(v.N)
	case KindString:
		return sqlparse.StringLit(v.S)
	case KindBool:
		return sqlparse.BoolLit(v.B)
	}
	return sqlparse.NullLit{}
}

// IsAggregate reports whether e contains an aggregate function call.
func IsAggregate(e sqlparse.Expr) bool {
	found := false
	sqlparse.WalkExprs(e, func(x sqlparse.Expr) bool {
		if _, ok := x.(*sqlparse.FuncCall); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

func applyAggregate(fc *sqlparse.FuncCall, schema Schema, group []Tuple) (Value, error) {
	if fc.Star {
		if fc.Name != "COUNT" {
			return Null, fmt.Errorf("relalg: %s(*) is not supported", fc.Name)
		}
		return NumV(float64(len(group))), nil
	}
	if len(fc.Args) != 1 {
		return Null, fmt.Errorf("relalg: aggregate %s wants 1 argument, got %d", fc.Name, len(fc.Args))
	}
	var vals []Value
	for _, t := range group {
		v, err := Eval(fc.Args[0], schema, t)
		if err != nil {
			return Null, err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch fc.Name {
	case "COUNT":
		return NumV(float64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null, nil
		}
		sum := 0.0
		for _, v := range vals {
			if v.K != KindNumber {
				return Null, fmt.Errorf("relalg: %s over non-numeric value", fc.Name)
			}
			sum += v.N
		}
		if fc.Name == "AVG" {
			return NumV(sum / float64(len(vals))), nil
		}
		return NumV(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := v.Compare(best)
			if !ok {
				return Null, fmt.Errorf("relalg: %s over incomparable values", fc.Name)
			}
			if (fc.Name == "MIN" && c < 0) || (fc.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return Null, fmt.Errorf("relalg: unknown aggregate %s", fc.Name)
}
