package relalg

import (
	"fmt"

	"repro/internal/sqlparse"
)

// Eval evaluates a sqlparse expression against one tuple of the given
// schema. Column references resolve through Schema.Index (qualified names
// exact, unqualified names by unique suffix). SQL NULL semantics are
// simplified to two-valued logic where any comparison with NULL is false.
func Eval(e sqlparse.Expr, schema Schema, t Tuple) (Value, error) {
	switch e := e.(type) {
	case *sqlparse.ColRef:
		idx := schema.Index(e.String())
		if idx < 0 {
			idx = schema.Index(e.Column)
		}
		if idx < 0 {
			return Null, fmt.Errorf("relalg: unknown column %s (schema %v)", e, schema.Names())
		}
		return t[idx], nil
	case sqlparse.NumberLit:
		return NumV(float64(e)), nil
	case sqlparse.StringLit:
		return StrV(string(e)), nil
	case sqlparse.BoolLit:
		return BoolV(bool(e)), nil
	case sqlparse.NullLit:
		return Null, nil
	case *sqlparse.IsNull:
		v, err := Eval(e.X, schema, t)
		if err != nil {
			return Null, err
		}
		return BoolV(v.IsNull() != e.Not), nil
	case *sqlparse.UnaryExpr:
		v, err := Eval(e.X, schema, t)
		if err != nil {
			return Null, err
		}
		switch e.Op {
		case "NOT":
			if v.K != KindBool {
				if v.IsNull() {
					return Null, nil
				}
				return Null, fmt.Errorf("relalg: NOT applied to %v", v.K)
			}
			return BoolV(!v.B), nil
		case "-":
			if v.IsNull() {
				return Null, nil
			}
			if v.K != KindNumber {
				return Null, fmt.Errorf("relalg: unary minus applied to %v", v.K)
			}
			return NumV(-v.N), nil
		}
		return Null, fmt.Errorf("relalg: unknown unary op %q", e.Op)
	case *sqlparse.BinaryExpr:
		return evalBinary(e, schema, t)
	case *sqlparse.FuncCall:
		return Null, fmt.Errorf("relalg: aggregate %s outside GROUP BY context", e.Name)
	}
	return Null, fmt.Errorf("relalg: cannot evaluate %T", e)
}

func evalBinary(e *sqlparse.BinaryExpr, schema Schema, t Tuple) (Value, error) {
	switch e.Op {
	case "AND", "OR":
		l, err := Eval(e.L, schema, t)
		if err != nil {
			return Null, err
		}
		lb := l.K == KindBool && l.B
		// Short circuit.
		if e.Op == "AND" && !lb {
			return BoolV(false), nil
		}
		if e.Op == "OR" && lb {
			return BoolV(true), nil
		}
		r, err := Eval(e.R, schema, t)
		if err != nil {
			return Null, err
		}
		rb := r.K == KindBool && r.B
		return BoolV(rb), nil
	}

	l, err := Eval(e.L, schema, t)
	if err != nil {
		return Null, err
	}
	r, err := Eval(e.R, schema, t)
	if err != nil {
		return Null, err
	}
	switch e.Op {
	case "+", "-", "*", "/":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		if l.K != KindNumber || r.K != KindNumber {
			return Null, fmt.Errorf("relalg: arithmetic %q on %v and %v", e.Op, l.K, r.K)
		}
		switch e.Op {
		case "+":
			return NumV(l.N + r.N), nil
		case "-":
			return NumV(l.N - r.N), nil
		case "*":
			return NumV(l.N * r.N), nil
		default:
			if r.N == 0 {
				return Null, fmt.Errorf("relalg: division by zero")
			}
			return NumV(l.N / r.N), nil
		}
	case "=":
		return BoolV(l.Equal(r)), nil
	case "<>":
		if l.IsNull() || r.IsNull() {
			return BoolV(false), nil
		}
		return BoolV(!l.Equal(r)), nil
	case "<", ">", "<=", ">=":
		c, ok := l.Compare(r)
		if !ok {
			return BoolV(false), nil
		}
		switch e.Op {
		case "<":
			return BoolV(c < 0), nil
		case ">":
			return BoolV(c > 0), nil
		case "<=":
			return BoolV(c <= 0), nil
		default:
			return BoolV(c >= 0), nil
		}
	}
	return Null, fmt.Errorf("relalg: unknown binary op %q", e.Op)
}

// EvalBool evaluates a predicate; NULL and non-bool results count as false.
func EvalBool(e sqlparse.Expr, schema Schema, t Tuple) (bool, error) {
	v, err := Eval(e, schema, t)
	if err != nil {
		return false, err
	}
	return v.K == KindBool && v.B, nil
}

// InferType predicts the result kind of an expression over a schema; used
// to type computed projection columns.
func InferType(e sqlparse.Expr, schema Schema) Kind {
	switch e := e.(type) {
	case *sqlparse.ColRef:
		idx := schema.Index(e.String())
		if idx < 0 {
			idx = schema.Index(e.Column)
		}
		if idx >= 0 {
			return schema.Columns[idx].Type
		}
		return KindNull
	case sqlparse.NumberLit:
		return KindNumber
	case sqlparse.StringLit:
		return KindString
	case sqlparse.BoolLit:
		return KindBool
	case *sqlparse.UnaryExpr:
		if e.Op == "-" {
			return KindNumber
		}
		return KindBool
	case *sqlparse.IsNull:
		return KindBool
	case *sqlparse.BinaryExpr:
		switch e.Op {
		case "+", "-", "*", "/":
			return KindNumber
		default:
			return KindBool
		}
	case *sqlparse.FuncCall:
		return KindNumber
	}
	return KindNull
}
